// Connection multiplexing: many UDT sockets sharing one UDP port and one
// pair of service threads, the send heap's fairness under mixed pacing
// rates, the Poller readiness surface, and the exclusive-port legacy mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <random>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "udt/channel.hpp"
#include "udt/multiplexer.hpp"
#include "udt/packet.hpp"
#include "udt/poller.hpp"
#include "udt/socket.hpp"

namespace udtr::udt {
namespace {

std::vector<std::uint8_t> make_payload(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::mt19937_64 rng{seed};
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

// Socket counts are scaled down under sanitizers via the environment (the
// CI TSan job sets UDTR_MUX_TEST_SOCKETS); the default exercises the full
// acceptance numbers.
int env_sockets(int def) {
  if (const char* s = std::getenv("UDTR_MUX_TEST_SOCKETS")) {
    const int v = std::atoi(s);
    if (v > 0) return v;
  }
  return def;
}

// OS threads in this process, from /proc/self/status.  Used to prove the
// multiplexed datapath serves N sockets with a constant thread count.
// Counts this process's threads, excluding kernel-managed io_uring workers
// ("iou-wrk-*"): the uring backend may punt a blocked sendmsg to one, they
// linger idle for a few seconds before exiting, and they are not service
// threads this library creates.
int thread_count() {
  int n = 0;
  std::error_code ec;
  for (const auto& ent :
       std::filesystem::directory_iterator("/proc/self/task", ec)) {
    std::ifstream c(ent.path() / "comm");
    std::string comm;
    std::getline(c, comm);
    if (comm.rfind("iou-wrk", 0) == 0) continue;
    ++n;
  }
  return ec ? -1 : n;
}

// Small protocol buffers so hundreds of sockets stay cheap: the receive
// slot directory is allocated eagerly per socket.
SocketOptions small_opts() {
  SocketOptions o;
  o.snd_buffer_bytes = 64 << 10;
  o.rcv_buffer_pkts = 128;
  return o;
}

struct MuxPair {
  std::unique_ptr<Socket> listener;
  std::unique_ptr<Socket> client;
  std::unique_ptr<Socket> server;
};

MuxPair make_pair_opts(SocketOptions server_opts, SocketOptions client_opts) {
  MuxPair p;
  p.listener = Socket::listen(0, server_opts);
  EXPECT_NE(p.listener, nullptr);
  auto accepted = std::async(std::launch::async, [&] {
    return p.listener->accept(std::chrono::seconds{10});
  });
  p.client =
      Socket::connect("127.0.0.1", p.listener->local_port(), client_opts);
  p.server = accepted.get();
  EXPECT_NE(p.client, nullptr);
  EXPECT_NE(p.server, nullptr);
  return p;
}

std::vector<std::uint8_t> pump(Socket& from, Socket& to,
                               const std::vector<std::uint8_t>& payload) {
  auto send_done = std::async(std::launch::async, [&] {
    const std::size_t sent = from.send(payload);
    from.flush(std::chrono::seconds{60});
    return sent;
  });
  std::vector<std::uint8_t> received;
  std::vector<std::uint8_t> buf(1 << 16);
  while (received.size() < payload.size()) {
    const std::size_t n = to.recv(buf, std::chrono::seconds{15});
    if (n == 0) break;
    received.insert(received.end(), buf.begin(), buf.begin() + n);
  }
  EXPECT_EQ(send_done.get(), payload.size());
  return received;
}

// --- the acceptance scenario: a crowd on one port under faults -------------

TEST(Multiplexer, ManySocketsOnePortByteExactUnderFaults) {
  const int n = env_sockets(200);
  constexpr std::size_t kBytesPer = 16 << 10;

  FaultConfig cfg;
  cfg.send.drop_p = 0.02;
  cfg.recv.drop_p = 0.02;
  cfg.send.reorder_p = 0.01;
  cfg.send.reorder_hold = 3;
  cfg.seed = 20260807;

  SocketOptions server_opts = small_opts();
  server_opts.faults = std::make_shared<FaultInjector>(cfg);
  SocketOptions client_opts = small_opts();
  client_opts.faults = std::make_shared<FaultInjector>(cfg);

  auto listener = Socket::listen(0, server_opts);
  ASSERT_NE(listener, nullptr);
  const std::uint16_t port = listener->local_port();

  // All clients share one injector pointer, so for_client() folds them onto
  // a single client-side multiplexer; the server side shares the
  // listener's.  Every logical datagram of every connection passes through
  // an injector.
  std::vector<std::unique_ptr<Socket>> clients(static_cast<std::size_t>(n));
  auto connector = std::async(std::launch::async, [&] {
    for (auto& c : clients) {
      c = Socket::connect("127.0.0.1", port, client_opts);
      if (c == nullptr) return false;
    }
    return true;
  });
  std::vector<std::unique_ptr<Socket>> servers;
  servers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto s = listener->accept(std::chrono::seconds{20});
    ASSERT_NE(s, nullptr) << "accept " << i;
    servers.push_back(std::move(s));
  }
  ASSERT_TRUE(connector.get());

  // One shared port on each side.
  for (auto& s : servers) {
    ASSERT_NE(s->multiplexer(), nullptr);
    EXPECT_EQ(s->multiplexer().get(), listener->multiplexer().get());
    EXPECT_EQ(s->local_port(), port);
  }
  for (auto& c : clients) {
    ASSERT_NE(c->multiplexer(), nullptr);
    EXPECT_EQ(c->multiplexer().get(), clients[0]->multiplexer().get());
  }
  EXPECT_EQ(listener->multiplexer()->attached_sockets(),
            static_cast<std::size_t>(n));

  // Every client sends a distinct payload whose first 4 bytes carry its
  // index; the server drains all flows from one thread via the Poller and
  // verifies byte-exact delivery per socket.
  std::atomic<bool> send_failed{false};
  std::vector<std::thread> senders;
  senders.reserve(clients.size());
  for (int i = 0; i < n; ++i) {
    senders.emplace_back([&, i] {
      auto payload = make_payload(kBytesPer, 1000 + i);
      payload[0] = static_cast<std::uint8_t>(i);
      payload[1] = static_cast<std::uint8_t>(i >> 8);
      if (clients[static_cast<std::size_t>(i)]->send(payload) !=
          payload.size()) {
        send_failed = true;
      }
    });
  }

  Poller poller;
  for (auto& s : servers) poller.add(s.get(), kPollIn);
  std::vector<std::vector<std::uint8_t>> got(servers.size());
  std::vector<PollEvent> events(servers.size());
  std::vector<std::uint8_t> buf(1 << 16);
  std::size_t done = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds{120};
  while (done < servers.size() &&
         std::chrono::steady_clock::now() < deadline) {
    const std::size_t nev =
        poller.wait(events, std::chrono::milliseconds{500});
    for (std::size_t e = 0; e < nev; ++e) {
      Socket* s = events[e].sock;
      const std::size_t idx = static_cast<std::size_t>(
          std::find_if(servers.begin(), servers.end(),
                       [&](const auto& p) { return p.get() == s; }) -
          servers.begin());
      ASSERT_LT(idx, servers.size());
      const std::size_t r = s->recv(buf, std::chrono::milliseconds{0});
      if (r == 0) continue;
      got[idx].insert(got[idx].end(), buf.begin(), buf.begin() + r);
      if (got[idx].size() == kBytesPer) {
        ++done;
        poller.remove(s);
      }
    }
  }
  for (auto& t : senders) t.join();
  EXPECT_FALSE(send_failed.load());
  ASSERT_EQ(done, servers.size());

  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].size(), kBytesPer) << "server socket " << i;
    const int idx = got[i][0] | (got[i][1] << 8);
    ASSERT_GE(idx, 0);
    ASSERT_LT(idx, n);
    auto expected = make_payload(kBytesPer, 1000 + idx);
    expected[0] = static_cast<std::uint8_t>(idx);
    expected[1] = static_cast<std::uint8_t>(idx >> 8);
    EXPECT_EQ(got[i], expected) << "flow " << idx << " not byte-exact";
  }

  EXPECT_GT(server_opts.faults->stats(FaultDir::kSend).dropped +
                server_opts.faults->stats(FaultDir::kRecv).dropped +
                client_opts.faults->stats(FaultDir::kSend).dropped +
                client_opts.faults->stats(FaultDir::kRecv).dropped,
            0u);
}

// --- thread accounting: N sockets, 2 threads per multiplexer shard ---------

TEST(Multiplexer, EchoFleetUsesFourServiceThreads) {
  const int n = env_sockets(512);
  constexpr std::size_t kMsgBytes = 1 << 10;

  // syn_s differs from the default so for_client() cannot reuse a
  // multiplexer created by another test in this process: both multiplexers
  // are created inside this test and their threads land in the delta.
  SocketOptions opts = small_opts();
  opts.syn_s = 0.011;

  // Sanitizer runtimes spawn a persistent background thread on the first
  // pthread_create; force it now so the baseline below includes it.
  std::thread{[] {}}.join();
  const int threads_before = thread_count();
  ASSERT_GT(threads_before, 0);

  auto listener = Socket::listen(0, opts);
  ASSERT_NE(listener, nullptr);
  const std::uint16_t port = listener->local_port();

  std::vector<std::unique_ptr<Socket>> clients(static_cast<std::size_t>(n));
  auto connector = std::async(std::launch::async, [&] {
    for (auto& c : clients) {
      c = Socket::connect("127.0.0.1", port, opts);
      if (c == nullptr) return false;
    }
    return true;
  });
  std::vector<std::unique_ptr<Socket>> servers;
  servers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto s = listener->accept(std::chrono::seconds{20});
    ASSERT_NE(s, nullptr) << "accept " << i;
    servers.push_back(std::move(s));
  }
  ASSERT_TRUE(connector.get());

  // Both endpoints of all N connections live in this process and are
  // served by exactly two multiplexers: one rx/tx thread pair per shard
  // each, independent of N (with default options both resolve to the same
  // shard count).
  const auto server_mux = servers.front()->multiplexer();
  const auto client_mux = clients.front()->multiplexer();
  ASSERT_NE(server_mux, nullptr);
  ASSERT_NE(client_mux, nullptr);
  // The connector's std::async thread unwinds asynchronously after get(),
  // so poll to the expected plateau instead of snapshotting once.
  const int expected_threads =
      2 * static_cast<int>(server_mux->shards() + client_mux->shards());
  int thread_delta = -1;
  for (int i = 0; i < 200 && thread_delta != expected_threads; ++i) {
    thread_delta = thread_count() - threads_before;
    if (thread_delta != expected_threads) {
      std::this_thread::sleep_for(std::chrono::milliseconds{10});
    }
  }
  EXPECT_EQ(thread_delta, expected_threads);

  // Echo server: a single app thread drives all N server sockets off one
  // Poller.
  std::atomic<bool> stop{false};
  std::thread echo([&] {
    Poller poller;
    for (auto& s : servers) poller.add(s.get(), kPollIn);
    std::vector<PollEvent> events(servers.size());
    std::vector<std::uint8_t> buf(1 << 16);
    while (!stop.load()) {
      const std::size_t nev =
          poller.wait(events, std::chrono::milliseconds{200});
      for (std::size_t e = 0; e < nev && !stop.load(); ++e) {
        Socket* s = events[e].sock;
        const std::size_t r = s->recv(buf, std::chrono::milliseconds{0});
        if (r > 0) s->send({buf.data(), r});
      }
    }
  });

  for (int i = 0; i < n; ++i) {
    const auto msg = make_payload(kMsgBytes, 7000 + i);
    ASSERT_EQ(clients[static_cast<std::size_t>(i)]->send(msg), msg.size());
  }

  // Drain the echoes from the main thread with a second poller.
  Poller rx;
  for (auto& c : clients) rx.add(c.get(), kPollIn);
  std::vector<std::vector<std::uint8_t>> got(clients.size());
  std::vector<PollEvent> events(clients.size());
  std::vector<std::uint8_t> buf(1 << 16);
  std::size_t done = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{60};
  while (done < clients.size() &&
         std::chrono::steady_clock::now() < deadline) {
    const std::size_t nev = rx.wait(events, std::chrono::milliseconds{500});
    for (std::size_t e = 0; e < nev; ++e) {
      Socket* c = events[e].sock;
      const std::size_t idx = static_cast<std::size_t>(
          std::find_if(clients.begin(), clients.end(),
                       [&](const auto& p) { return p.get() == c; }) -
          clients.begin());
      ASSERT_LT(idx, clients.size());
      const std::size_t r = c->recv(buf, std::chrono::milliseconds{0});
      if (r == 0) continue;
      got[idx].insert(got[idx].end(), buf.begin(), buf.begin() + r);
      if (got[idx].size() == kMsgBytes) {
        ++done;
        rx.remove(c);
      }
    }
  }
  stop = true;
  echo.join();
  ASSERT_EQ(done, clients.size());
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)],
              make_payload(kMsgBytes, 7000 + i))
        << "echo " << i;
  }
}

// --- send-heap fairness under mixed pacing rates ---------------------------

TEST(Multiplexer, SendHeapHonoursMixedRateCaps) {
  const double caps_mbps[] = {10.0, 20.0, 40.0};
  constexpr int kFlows = 3;

  auto listener = Socket::listen(0, SocketOptions{});
  ASSERT_NE(listener, nullptr);
  const std::uint16_t port = listener->local_port();

  std::vector<std::unique_ptr<Socket>> clients;
  std::vector<std::unique_ptr<Socket>> servers;
  for (int i = 0; i < kFlows; ++i) {
    SocketOptions co;
    co.max_bandwidth_mbps = caps_mbps[i];
    auto accepted = std::async(std::launch::async, [&] {
      return listener->accept(std::chrono::seconds{10});
    });
    auto c = Socket::connect("127.0.0.1", port, co);
    auto s = accepted.get();
    ASSERT_NE(c, nullptr);
    ASSERT_NE(s, nullptr);
    clients.push_back(std::move(c));
    servers.push_back(std::move(s));
  }
  // Rate caps are per-socket state, not channel state: all three flows
  // share the client multiplexer (and its single send thread).
  EXPECT_EQ(clients[1]->multiplexer().get(), clients[0]->multiplexer().get());
  EXPECT_EQ(clients[2]->multiplexer().get(), clients[0]->multiplexer().get());

  std::atomic<bool> stop{false};
  std::vector<std::thread> workers;
  for (int i = 0; i < kFlows; ++i) {
    workers.emplace_back([&, i] {
      const auto block = make_payload(256 << 10, 31 + i);
      while (!stop.load()) {
        clients[static_cast<std::size_t>(i)]->send(block);
      }
    });
    workers.emplace_back([&, i] {
      std::vector<std::uint8_t> buf(1 << 16);
      while (!stop.load()) {
        servers[static_cast<std::size_t>(i)]->recv(
            buf, std::chrono::milliseconds{100});
      }
    });
  }

  const auto window = std::chrono::seconds{2};
  const auto t0 = std::chrono::steady_clock::now();
  std::this_thread::sleep_for(window);
  std::vector<std::uint64_t> delivered;
  for (auto& s : servers) delivered.push_back(s->perf().bytes_delivered);
  const double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  stop = true;
  for (auto& c : clients) c->close();
  for (auto& t : workers) t.join();

  // The starvation floor is proportional to what the box actually moved:
  // on an oversubscribed CI runner the aggregate can land far below the
  // 70 Mb/s the caps add up to, but the shared send thread must still
  // split whatever was achieved roughly cap-proportionally.  The over-cap
  // bound stays absolute — honoring a cap does not depend on load.
  double total_mbps = 0.0;
  for (int i = 0; i < kFlows; ++i) {
    total_mbps += static_cast<double>(delivered[static_cast<std::size_t>(i)]) *
                  8.0 / elapsed_s / 1e6;
  }
  double total_caps = 0.0;
  for (double c : caps_mbps) total_caps += c;
  const double achieved_frac = std::min(1.0, total_mbps / total_caps);
  for (int i = 0; i < kFlows; ++i) {
    const double mbps =
        static_cast<double>(delivered[static_cast<std::size_t>(i)]) * 8.0 /
        elapsed_s / 1e6;
    EXPECT_GT(mbps, caps_mbps[i] * 0.4 * achieved_frac)
        << "flow " << i << " starved (aggregate " << total_mbps << " Mb/s)";
    EXPECT_LT(mbps, caps_mbps[i] * 1.3) << "flow " << i << " over cap";
  }
}

// --- poller ERR on a broken peer -------------------------------------------

TEST(Multiplexer, PollerReportsErrWhenPeerGoesDark) {
  FaultConfig cfg;
  cfg.seed = 7;
  auto faults = std::make_shared<FaultInjector>(cfg);

  SocketOptions client_opts = small_opts();
  client_opts.faults = faults;
  client_opts.min_exp_timeout_s = 0.05;
  client_opts.max_exp_timeouts = 2;
  MuxPair p = make_pair_opts(small_opts(), client_opts);
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);

  Poller poller;
  ASSERT_TRUE(poller.add(p.client.get(), kPollIn | kPollOut));

  // A healthy established client is immediately writable.
  std::vector<PollEvent> events(4);
  ASSERT_EQ(poller.wait(events, std::chrono::milliseconds{500}), 1u);
  EXPECT_EQ(events[0].sock, p.client.get());
  EXPECT_NE(events[0].events & kPollOut, 0u);

  // The path goes dark with data outstanding: EXP escalates and the poller
  // surfaces ERR without the app ever calling recv/send again.
  faults->set_black_hole(true);
  const auto payload = make_payload(8 << 10, 99);
  ASSERT_EQ(p.client->send(payload), payload.size());

  bool saw_err = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{10};
  while (!saw_err && std::chrono::steady_clock::now() < deadline) {
    const std::size_t n = poller.wait(events, std::chrono::milliseconds{500});
    for (std::size_t e = 0; e < n; ++e) {
      if (events[e].sock == p.client.get() &&
          (events[e].events & kPollErr) != 0) {
        saw_err = true;
      }
    }
  }
  EXPECT_TRUE(saw_err);
  EXPECT_TRUE(p.client->broken());
  EXPECT_EQ(p.client->last_error(), SocketError::kConnectionBroken);
}

// --- exclusive-port legacy mode --------------------------------------------

TEST(Multiplexer, ExclusivePortReproducesLegacyDatapath) {
  SocketOptions opts;
  opts.exclusive_port = true;
  MuxPair p = make_pair_opts(opts, opts);
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);

  // No multiplexer anywhere, and the accepted child owns its own port.
  EXPECT_EQ(p.listener->multiplexer(), nullptr);
  EXPECT_EQ(p.client->multiplexer(), nullptr);
  EXPECT_EQ(p.server->multiplexer(), nullptr);
  EXPECT_NE(p.server->local_port(), p.listener->local_port());

  const auto payload = make_payload(512 << 10, 5);
  EXPECT_EQ(pump(*p.client, *p.server, payload), payload);
  const auto back = make_payload(128 << 10, 6);
  EXPECT_EQ(pump(*p.server, *p.client, back), back);
}

TEST(Multiplexer, MixedModesInteroperate) {
  SocketOptions exclusive;
  exclusive.exclusive_port = true;

  {
    // Legacy server, multiplexed client.
    MuxPair p = make_pair_opts(exclusive, SocketOptions{});
    ASSERT_NE(p.client, nullptr);
    ASSERT_NE(p.server, nullptr);
    EXPECT_EQ(p.server->multiplexer(), nullptr);
    EXPECT_NE(p.client->multiplexer(), nullptr);
    const auto payload = make_payload(256 << 10, 11);
    EXPECT_EQ(pump(*p.client, *p.server, payload), payload);
  }
  {
    // Multiplexed server, legacy client.
    MuxPair p = make_pair_opts(SocketOptions{}, exclusive);
    ASSERT_NE(p.client, nullptr);
    ASSERT_NE(p.server, nullptr);
    EXPECT_NE(p.server->multiplexer(), nullptr);
    EXPECT_EQ(p.client->multiplexer(), nullptr);
    EXPECT_EQ(p.server->local_port(), p.listener->local_port());
    const auto payload = make_payload(256 << 10, 12);
    EXPECT_EQ(pump(*p.client, *p.server, payload), payload);
  }
}

// --- duplicate-handshake memory --------------------------------------------

TEST(Multiplexer, SlowSynRetransmitDoesNotSpawnGhostSocket) {
  MuxPair p = make_pair_opts(small_opts(), small_opts());
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);
  auto server_mux = p.listener->multiplexer();
  ASSERT_NE(server_mux, nullptr);
  ASSERT_EQ(server_mux->attached_sockets(), 1u);

  // Replay the client's original connect request — same source endpoint,
  // same peer socket id — as a slow retransmit would.  The live-children
  // index must answer it with the original response instead of queueing a
  // second pending handshake.
  auto client_mux = p.client->multiplexer();
  ASSERT_NE(client_mux, nullptr);
  HandshakePayload replay;
  replay.request_type = 1;
  replay.initial_seq = 0;
  replay.mss_bytes = static_cast<std::uint32_t>(small_opts().mss_bytes);
  replay.socket_id = p.client->id();
  const auto server =
      Endpoint::resolve("127.0.0.1", p.listener->local_port());
  ASSERT_TRUE(server.has_value());
  for (int i = 0; i < 3; ++i) {
    send_handshake_packet(client_mux->channel(), *server, 0, replay);
  }

  // No second connection appears...
  EXPECT_EQ(p.listener->accept(std::chrono::milliseconds{300}), nullptr);
  EXPECT_EQ(server_mux->attached_sockets(), 1u);

  // ... and the established flow is untouched by the replayed response the
  // re-reply sends to the (already connected) client.
  const auto payload = make_payload(64 << 10, 77);
  EXPECT_EQ(pump(*p.client, *p.server, payload), payload);

  // After the child dies its handshake memory demotes to the bounded
  // answered map, still suppressing late retransmits.
  p.server->close();
  p.server.reset();
  EXPECT_GE(server_mux->remembered_handshakes(), 1u);
  for (int i = 0; i < 3; ++i) {
    send_handshake_packet(client_mux->channel(), *server, 0, replay);
  }
  EXPECT_EQ(p.listener->accept(std::chrono::milliseconds{300}), nullptr);
}

// --- sharded datapath -------------------------------------------------------

// One listener port, four shards, a fleet of flows whose socket ids land on
// every shard: byte-exact both directions proves routing, steering (or the
// software-demux fallback, wherever SO_REUSEPORT/BPF is unavailable) and the
// per-shard timer wheels against real traffic.
TEST(Multiplexer, ShardedFleetByteExactAcrossShards) {
  const int n = env_sockets(32);
  SocketOptions opts = small_opts();
  opts.mux_shards = 4;
  opts.syn_s = 0.012;  // keep for_client() from reusing another test's mux

  auto listener = Socket::listen(0, opts);
  ASSERT_NE(listener, nullptr);
  const std::uint16_t port = listener->local_port();

  std::vector<std::unique_ptr<Socket>> clients;
  std::vector<std::unique_ptr<Socket>> servers;
  for (int i = 0; i < n; ++i) {
    auto accepted = std::async(std::launch::async, [&] {
      return listener->accept(std::chrono::seconds{10});
    });
    auto c = Socket::connect("127.0.0.1", port, opts);
    ASSERT_NE(c, nullptr) << "connect " << i;
    auto s = accepted.get();
    ASSERT_NE(s, nullptr) << "accept " << i;
    clients.push_back(std::move(c));
    servers.push_back(std::move(s));
  }
  auto mux = servers.front()->multiplexer();
  ASSERT_NE(mux, nullptr);
  EXPECT_EQ(mux->shards(), 4u);
  EXPECT_EQ(mux->attached_sockets(), static_cast<std::size_t>(n));

  for (int i = 0; i < n; ++i) {
    const auto up = make_payload(24 << 10, 1000 + i);
    const auto down = make_payload(24 << 10, 2000 + i);
    EXPECT_EQ(pump(*clients[i], *servers[i], up), up) << "flow " << i << " up";
    EXPECT_EQ(pump(*servers[i], *clients[i], down), down)
        << "flow " << i << " down";
  }
  EXPECT_EQ(mux->unroutable_datagrams(), 0u);
}

// mux_shards = 1 must reproduce the single-pair datapath: one shard, the
// port's one channel for every socket, byte-exact transfer.
TEST(Multiplexer, SingleShardReproducesSinglePairDatapath) {
  SocketOptions opts = small_opts();
  opts.mux_shards = 1;
  opts.syn_s = 0.014;
  MuxPair p = make_pair_opts(opts, opts);
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);
  auto mux = p.server->multiplexer();
  ASSERT_NE(mux, nullptr);
  EXPECT_EQ(mux->shards(), 1u);
  EXPECT_FALSE(mux->kernel_steered());
  const auto payload = make_payload(256 << 10, 42);
  EXPECT_EQ(pump(*p.client, *p.server, payload), payload);
}

// With SO_REUSEPORT disabled (UDTR_NO_REUSEPORT) the shards share one fd
// and every rx thread software-demuxes to the owning shard's index — the
// datapath must stay byte-exact with kernel steering off.
TEST(Multiplexer, FallbackSoftwareDemuxStaysByteExact) {
  ::setenv("UDTR_NO_REUSEPORT", "1", 1);
  SocketOptions opts = small_opts();
  opts.mux_shards = 4;
  opts.syn_s = 0.013;
  MuxPair p = make_pair_opts(opts, opts);
  ::unsetenv("UDTR_NO_REUSEPORT");
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);
  auto mux = p.server->multiplexer();
  ASSERT_NE(mux, nullptr);
  EXPECT_EQ(mux->shards(), 4u);
  EXPECT_FALSE(mux->kernel_steered());
  const auto payload = make_payload(256 << 10, 43);
  EXPECT_EQ(pump(*p.client, *p.server, payload), payload);
  EXPECT_EQ(pump(*p.server, *p.client, payload), payload);
}

// The O(active) property itself: an idle fleet parks at EXP cadence on the
// timer wheel, so the per-socket sweep count over a fixed window stays far
// below the one-sweep-per-millisecond of the legacy full walk.
TEST(Multiplexer, IdleFleetParksTimersOnTheWheel) {
  if (std::getenv("UDTR_FULL_SWEEP") != nullptr) {
    GTEST_SKIP() << "legacy full-sweep mode forced by environment";
  }
  const int n = env_sockets(64);
  SocketOptions opts = small_opts();
  opts.syn_s = 0.015;

  auto listener = Socket::listen(0, opts);
  ASSERT_NE(listener, nullptr);
  std::vector<std::unique_ptr<Socket>> socks;
  for (int i = 0; i < n; ++i) {
    auto accepted = std::async(std::launch::async, [&] {
      return listener->accept(std::chrono::seconds{10});
    });
    auto c = Socket::connect("127.0.0.1", listener->local_port(), opts);
    ASSERT_NE(c, nullptr);
    auto s = accepted.get();
    ASSERT_NE(s, nullptr);
    socks.push_back(std::move(c));
    socks.push_back(std::move(s));
  }
  auto mux = socks.back()->multiplexer();  // the server-side multiplexer
  ASSERT_NE(mux, nullptr);

  const std::uint64_t before = mux->timer_socket_sweeps();
  std::this_thread::sleep_for(std::chrono::milliseconds{600});
  const std::uint64_t swept = mux->timer_socket_sweeps() - before;
  // Full-walk cost over this window would be ~600 sweeps per socket; the
  // wheel leaves idle sockets parked near EXP cadence (a handful of fires,
  // plus keepalive-triggered tightenings).  50 per socket is an order of
  // magnitude of slack on top of that.
  EXPECT_LT(swept, static_cast<std::uint64_t>(n) * 50u)
      << "idle sockets are being swept like a full walk";
}

// --- wait_many at fleet scale ----------------------------------------------

// One application thread drives thousands of server sockets off
// Poller::wait_many (the O(candidates) path — wait()'s full scan would be
// quadratic here), with the whole fleet parked on one sharded port.  The
// 100k-socket acceptance number lives in bench_fleet_scale (teardown of a
// six-figure fleet is minutes of shutdown gaps, which a bench can _Exit
// past but a test cannot); this test keeps the same shape at a size whose
// orderly close fits the suite budget.
TEST(Multiplexer, WaitManyDrivesFleetEchoOnShardedPort) {
  const int n = env_sockets(4096);
  constexpr std::size_t kMsgBytes = 256;

  SocketOptions opts = small_opts();
  opts.mux_shards = 2;   // a sharded port regardless of host core count
  opts.syn_s = 0.012;    // private multiplexer pair for this test
  // The whole fleet shares 127.0.0.1: lift the per-source handshake rate
  // out of the way (memory stays defended by the cookie + pending cap).
  opts.handshake_rate_per_ip = 1e6;
  opts.max_pending_per_ip = 4096;

  auto listener = Socket::listen(0, opts);
  ASSERT_NE(listener, nullptr);
  const std::uint16_t port = listener->local_port();

  std::vector<std::unique_ptr<Socket>> clients(static_cast<std::size_t>(n));
  auto connector = std::async(std::launch::async, [&] {
    for (auto& c : clients) {
      c = Socket::connect("127.0.0.1", port, opts);
      if (c == nullptr) return false;
    }
    return true;
  });
  std::vector<std::unique_ptr<Socket>> servers;
  servers.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto s = listener->accept(std::chrono::seconds{60});
    ASSERT_NE(s, nullptr) << "accept " << i;
    servers.push_back(std::move(s));
  }
  ASSERT_TRUE(connector.get());
  ASSERT_EQ(servers.front()->multiplexer()->attached_sockets(),
            static_cast<std::size_t>(n));  // the whole fleet, one port

  // Echo server: one thread, one wait_many poller, n sockets.
  std::atomic<bool> stop{false};
  std::thread echo([&] {
    Poller poller;
    for (auto& s : servers) poller.add(s.get(), kPollIn);
    std::vector<PollEvent> events(256);
    std::vector<std::uint8_t> buf(1 << 16);
    while (!stop.load()) {
      const std::size_t nev =
          poller.wait_many(events, std::chrono::milliseconds{200});
      for (std::size_t e = 0; e < nev && !stop.load(); ++e) {
        Socket* s = events[e].sock;
        const std::size_t r = s->recv(buf, std::chrono::milliseconds{0});
        if (r > 0) s->send({buf.data(), r});
      }
    }
  });

  std::unordered_map<Socket*, std::size_t> client_idx;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    client_idx.emplace(clients[i].get(), i);
  }
  for (int i = 0; i < n; ++i) {
    const auto msg = make_payload(kMsgBytes, 9000 + i);
    ASSERT_EQ(clients[static_cast<std::size_t>(i)]->send(msg), msg.size());
  }

  // Drain the echoes, also via wait_many.
  Poller rx;
  for (auto& c : clients) rx.add(c.get(), kPollIn);
  std::vector<std::vector<std::uint8_t>> got(clients.size());
  std::vector<PollEvent> events(256);
  std::vector<std::uint8_t> buf(1 << 16);
  std::size_t done = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds{120};
  while (done < clients.size() &&
         std::chrono::steady_clock::now() < deadline) {
    const std::size_t nev = rx.wait_many(events, std::chrono::milliseconds{500});
    for (std::size_t e = 0; e < nev; ++e) {
      Socket* c = events[e].sock;
      const std::size_t idx = client_idx.at(c);
      const std::size_t r = c->recv(buf, std::chrono::milliseconds{0});
      if (r == 0) continue;
      got[idx].insert(got[idx].end(), buf.begin(), buf.begin() + r);
      if (got[idx].size() == kMsgBytes) {
        ++done;
        rx.remove(c);
      }
    }
  }
  stop = true;
  echo.join();
  ASSERT_EQ(done, clients.size());
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(got[static_cast<std::size_t>(i)],
              make_payload(kMsgBytes, 9000 + i))
        << "echo " << i;
  }

  // Orderly close of 2n sockets costs ~2 ms of shutdown gaps each; fan the
  // closes across a small pool so teardown stays in the suite budget.
  auto close_all = [](std::vector<std::unique_ptr<Socket>>& socks) {
    constexpr std::size_t kClosers = 16;
    std::vector<std::thread> pool;
    std::atomic<std::size_t> next{0};
    for (std::size_t t = 0; t < kClosers; ++t) {
      pool.emplace_back([&] {
        for (std::size_t i = next.fetch_add(1); i < socks.size();
             i = next.fetch_add(1)) {
          socks[i]->close();
        }
      });
    }
    for (auto& t : pool) t.join();
  };
  close_all(clients);
  close_all(servers);
}

}  // namespace
}  // namespace udtr::udt
