#include <gtest/gtest.h>

#include <chrono>

#include "udt/pacing.hpp"
#include "udt/profiler.hpp"

namespace udtr::udt {
namespace {

using Clock = std::chrono::steady_clock;

TEST(Pacer, SpacesSendsByPeriod) {
  Pacer pacer;
  const auto period = std::chrono::microseconds{200};
  const auto t0 = Clock::now();
  for (int i = 0; i < 50; ++i) pacer.pace(period);
  const auto elapsed = Clock::now() - t0;
  // 50 sends at 200 us spacing ~ 9.8 ms minimum (the first is immediate).
  EXPECT_GE(elapsed, std::chrono::microseconds{49 * 200 - 500});
}

TEST(Pacer, MicrosecondPrecisionViaSpin) {
  // Sub-scheduler-quantum intervals must still be honoured: 30 us pacing
  // over 100 packets takes ~3 ms, not ~0 (busy-wait precision, §4.5).
  Pacer pacer;
  const auto t0 = Clock::now();
  for (int i = 0; i < 100; ++i) pacer.pace(std::chrono::microseconds{30});
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - t0)
                      .count();
  EXPECT_GE(us, 99 * 30 - 100);
}

TEST(Pacer, LateScheduleReanchorsInsteadOfBursting) {
  // If the sender falls behind (e.g. a long syscall), the pacer must not
  // emit a catch-up burst (§4.4): the next send goes out immediately, and
  // the schedule restarts from now.
  Pacer pacer;
  pacer.pace(std::chrono::microseconds{100});
  std::this_thread::sleep_for(std::chrono::milliseconds{5});
  const auto t0 = Clock::now();
  pacer.pace(std::chrono::microseconds{100});  // late: immediate, re-anchors
  EXPECT_LT(Clock::now() - t0, std::chrono::microseconds{500});
  const auto t1 = Clock::now();
  pacer.pace(std::chrono::microseconds{300});  // waits out the re-anchor
  pacer.pace(std::chrono::microseconds{300});  // plus a full period
  EXPECT_GE(Clock::now() - t1, std::chrono::microseconds{350});
}

TEST(Pacer, BatchedPaceAdvancesScheduleByCountPeriods) {
  // pace(period, n) must consume exactly n periods of schedule: 10 batches
  // of 5 at 100 us spacing take the same wall time as 50 singles.
  Pacer pacer;
  const auto t0 = Clock::now();
  for (int i = 0; i < 10; ++i) pacer.pace(std::chrono::microseconds{100}, 5);
  const auto elapsed = Clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::microseconds{9 * 500 - 200});
}

TEST(Pacer, BatchCreditRespectsHorizonAndBounds) {
  using std::chrono::microseconds;
  // Low rate (period above the horizon): strict per-packet pacing.
  EXPECT_EQ(batch_credit(microseconds{300}, 16), 1);
  // High rate: the 200 us horizon divided by the period, capped by max.
  EXPECT_EQ(batch_credit(microseconds{25}, 16), 8);
  EXPECT_EQ(batch_credit(microseconds{10}, 16), 16);
  EXPECT_EQ(batch_credit(microseconds{10}, 4), 4);
  // Unpaced (period 0) saturates the batch; batching off always yields 1.
  EXPECT_EQ(batch_credit(std::chrono::nanoseconds{0}, 16), 16);
  EXPECT_EQ(batch_credit(microseconds{1}, 1), 1);
}

TEST(Profiler, AccumulatesPerUnit) {
  Profiler prof;
  prof.add(ProfUnit::kUdpIo, 600);
  prof.add(ProfUnit::kUdpIo, 400);
  prof.add(ProfUnit::kTiming, 1000);
  EXPECT_EQ(prof.nanos(ProfUnit::kUdpIo), 1000u);
  EXPECT_EQ(prof.total_nanos(), 2000u);
  const auto report = prof.report();
  EXPECT_DOUBLE_EQ(
      report[static_cast<std::size_t>(ProfUnit::kUdpIo)].percent, 50.0);
}

TEST(Profiler, ScopedTimerMeasuresElapsed) {
  Profiler prof;
  {
    ScopedTimer t{&prof, ProfUnit::kPacking};
    std::this_thread::sleep_for(std::chrono::milliseconds{2});
  }
  EXPECT_GE(prof.nanos(ProfUnit::kPacking), 1'500'000u);
}

TEST(Profiler, NullProfilerIsSafe) {
  ScopedTimer t{nullptr, ProfUnit::kPacking};  // must not crash
  SUCCEED();
}

TEST(Profiler, ResetZeroesEverything) {
  Profiler prof;
  prof.add(ProfUnit::kLossProcessing, 123);
  prof.reset();
  EXPECT_EQ(prof.total_nanos(), 0u);
  EXPECT_EQ(prof.calls(ProfUnit::kLossProcessing), 0u);
}

TEST(Profiler, CountsInvocationsPerUnit) {
  // The calls column is what makes batched I/O visible: one kUdpIo call
  // may now cover many packets, and calls-per-packet is the Table 3 metric
  // batching improves.
  Profiler prof;
  prof.add(ProfUnit::kUdpIo, 500);        // default: one invocation
  prof.add(ProfUnit::kUdpIo, 700, 1);
  { ScopedTimer t{&prof, ProfUnit::kUdpIo}; }
  EXPECT_EQ(prof.calls(ProfUnit::kUdpIo), 3u);
  EXPECT_EQ(prof.report()[static_cast<std::size_t>(ProfUnit::kUdpIo)].calls,
            3u);
}

TEST(Profiler, UnitNamesAreStable) {
  EXPECT_EQ(prof_unit_name(ProfUnit::kUdpIo), "udp-io");
  EXPECT_EQ(prof_unit_name(ProfUnit::kTiming), "timing");
  EXPECT_EQ(prof_unit_name(ProfUnit::kAppInteraction), "app-interaction");
}

}  // namespace
}  // namespace udtr::udt
