#include "udt/packet.hpp"

#include <gtest/gtest.h>

namespace udtr::udt {
namespace {

TEST(PacketCodec, DataHeaderRoundTrip) {
  std::array<std::uint8_t, kHeaderBytes> buf{};
  DataHeader h;
  h.seq = udtr::SeqNo{0x12345678};
  h.timestamp_us = 987654321;
  h.dst_socket = 0xCAFEBABE;
  write_data_header(buf, h);
  EXPECT_FALSE(is_control(buf));
  const DataHeader out = read_data_header(buf);
  EXPECT_EQ(out.seq, h.seq);
  EXPECT_EQ(out.timestamp_us, h.timestamp_us);
  EXPECT_EQ(out.dst_socket, h.dst_socket);
}

TEST(PacketCodec, DataSeqBitThirtyOneIsClear) {
  std::array<std::uint8_t, kHeaderBytes> buf{};
  DataHeader h;
  h.seq = udtr::SeqNo{SeqNo::kMax};
  write_data_header(buf, h);
  EXPECT_EQ(buf[0] & 0x80U, 0U);  // data flag
  EXPECT_EQ(read_data_header(buf).seq, h.seq);
}

TEST(PacketCodec, CtrlHeaderRoundTrip) {
  std::array<std::uint8_t, kHeaderBytes> buf{};
  CtrlHeader h;
  h.type = CtrlType::kNak;
  h.info = 4242;
  h.timestamp_us = 1111;
  h.dst_socket = 77;
  write_ctrl_header(buf, h);
  EXPECT_TRUE(is_control(buf));
  const CtrlHeader out = read_ctrl_header(buf);
  EXPECT_EQ(out.type, CtrlType::kNak);
  EXPECT_EQ(out.info, 4242u);
  EXPECT_EQ(out.timestamp_us, 1111u);
  EXPECT_EQ(out.dst_socket, 77u);
}

TEST(PacketCodec, AllCtrlTypesSurviveRoundTrip) {
  for (CtrlType t : {CtrlType::kHandshake, CtrlType::kKeepAlive,
                     CtrlType::kAck, CtrlType::kNak, CtrlType::kShutdown,
                     CtrlType::kAck2}) {
    std::array<std::uint8_t, kHeaderBytes> buf{};
    CtrlHeader h;
    h.type = t;
    write_ctrl_header(buf, h);
    EXPECT_EQ(read_ctrl_header(buf).type, t);
  }
}

TEST(LossEncoding, PaperAppendixExample) {
  // The Appendix example: 0x80000003, 0x86, 0x8000000F(?), ... — encoded
  // ranges [3,6] read as "flag set on 3 means everything to the next word
  // (6) is lost".  Verify with [3,6] and singleton 18.
  const std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>> ranges{
      {udtr::SeqNo{3}, udtr::SeqNo{6}}, {udtr::SeqNo{18}, udtr::SeqNo{18}}};
  const auto words = encode_loss_ranges(ranges);
  ASSERT_EQ(words.size(), 3u);
  EXPECT_EQ(words[0], 0x80000003U);
  EXPECT_EQ(words[1], 6U);
  EXPECT_EQ(words[2], 18U);
  EXPECT_EQ(decode_loss_ranges(words), ranges);
}

TEST(LossEncoding, SingleLossUsesOneWord) {
  const std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>> ranges{
      {udtr::SeqNo{42}, udtr::SeqNo{42}}};
  const auto words = encode_loss_ranges(ranges);
  ASSERT_EQ(words.size(), 1u);
  EXPECT_EQ(words[0], 42U);
  EXPECT_EQ(decode_loss_ranges(words), ranges);
}

TEST(LossEncoding, CompressionBeatsEnumeration) {
  // 30000 consecutive losses encode in two words, not 30000 (§4.2).
  const std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>> ranges{
      {udtr::SeqNo{1000}, udtr::SeqNo{31000}}};
  EXPECT_EQ(encode_loss_ranges(ranges).size(), 2u);
}

TEST(LossEncoding, TruncatedRangeIsDropped) {
  const std::vector<std::uint32_t> words{0x80000005U};  // open, no close
  EXPECT_TRUE(decode_loss_ranges(words).empty());
}

TEST(LossEncoding, MixedRoundTrip) {
  std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>> ranges;
  for (int i = 0; i < 50; ++i) {
    const std::int32_t start = i * 100;
    const std::int32_t end = (i % 3 == 0) ? start : start + i;
    ranges.emplace_back(udtr::SeqNo{start}, udtr::SeqNo{end});
  }
  EXPECT_EQ(decode_loss_ranges(encode_loss_ranges(ranges)), ranges);
}

TEST(LossEncoding, WrapBoundaryRange) {
  const std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>> ranges{
      {udtr::SeqNo{SeqNo::kMax - 2}, udtr::SeqNo{3}}};
  EXPECT_EQ(decode_loss_ranges(encode_loss_ranges(ranges)), ranges);
}

}  // namespace
}  // namespace udtr::udt
