// Deterministic fuzz harness for the packet codec layer (the tentpole's
// third leg): every decode path that touches bytes straight off the wire is
// fed random, truncated, and bit-flipped buffers.  The assertions are
// intentionally weak — the decoders may reject or accept — but they must
// never read out of bounds, crash, or hang, and what they do accept must
// satisfy basic structural invariants.  Run under
// -DUDTR_SANITIZE=address,undefined for the full effect (CI does).
#include "udt/packet.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "udt/handshake_cookie.hpp"

namespace udtr::udt {
namespace {

constexpr int kRandomIters = 60000;
constexpr int kMutationIters = 60000;

// Runs every wire-facing decoder over one buffer.
void decode_everything(std::span<const std::uint8_t> pkt) {
  (void)is_control(pkt);
  if (const auto d = decode_data_header(pkt)) {
    // 31-bit sequence invariant.
    EXPECT_GE(d->seq.value(), 0);
    EXPECT_LE(d->seq.value(), udtr::SeqNo::kMax);
  }
  if (const auto c = decode_ctrl_header(pkt)) {
    EXPECT_TRUE(is_known_ctrl_type(static_cast<std::uint16_t>(c->type)));
  }
  if (pkt.size() >= kHeaderBytes) {
    const auto payload = pkt.subspan(kHeaderBytes);
    if (const auto ack = decode_ack_payload(payload)) {
      EXPECT_GE(ack->ack_seq.value(), 0);
      EXPECT_LE(ack->ack_seq.value(), udtr::SeqNo::kMax);
    }
    (void)decode_handshake_payload(payload);
    if (const auto drop = decode_msg_drop_payload(payload)) {
      // Accepted drops must be well-ordered in circular sequence space.
      EXPECT_GE(udtr::SeqNo::offset(drop->first, drop->last), 0);
      EXPECT_GE(drop->first.value(), 0);
      EXPECT_LE(drop->first.value(), udtr::SeqNo::kMax);
      EXPECT_GE(drop->last.value(), 0);
      EXPECT_LE(drop->last.value(), udtr::SeqNo::kMax);
    }
    const auto ranges = decode_nak_payload(payload);
    EXPECT_LE(ranges.size(), kMaxNakRanges);
    for (const auto& [first, last] : ranges) {
      EXPECT_GE(first.value(), 0);
      EXPECT_LE(first.value(), udtr::SeqNo::kMax);
      EXPECT_GE(last.value(), 0);
      EXPECT_LE(last.value(), udtr::SeqNo::kMax);
    }
  }
}

TEST(PacketFuzz, RandomBuffersNeverCrashDecoders) {
  std::mt19937_64 rng{0xF00DF00Du};
  std::vector<std::uint8_t> buf;
  for (int i = 0; i < kRandomIters; ++i) {
    // Bias towards interesting sizes: empty, sub-header, header-ish, and a
    // tail of large buffers.
    const std::size_t len = [&]() -> std::size_t {
      switch (rng() % 4) {
        case 0:
          return rng() % (kHeaderBytes + 1);       // 0..16
        case 1:
          return kHeaderBytes + rng() % 32;        // small payloads
        case 2:
          return kHeaderBytes + rng() % 256;
        default:
          return rng() % 2048;
      }
    }();
    buf.resize(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    decode_everything(buf);
  }
}

TEST(PacketFuzz, MutatedValidPacketsNeverCrashDecoders) {
  std::mt19937_64 rng{0xBEEFCAFEu};
  std::vector<std::uint8_t> pkt;
  for (int i = 0; i < kMutationIters; ++i) {
    pkt.clear();
    // Start from a structurally valid packet of a random kind.
    switch (rng() % 4) {
      case 0: {  // data packet (message-mode word1 included)
        pkt.resize(kHeaderBytes + rng() % 64);
        DataHeader h;
        h.seq = udtr::SeqNo{static_cast<std::int32_t>(
            rng() & static_cast<std::uint64_t>(udtr::SeqNo::kMax))};
        h.msg_word = make_msg_word(static_cast<MsgBoundary>(rng() % 4),
                                   rng() % 2 == 0,
                                   static_cast<std::uint32_t>(rng()));
        h.timestamp_us = static_cast<std::uint32_t>(rng());
        h.dst_socket = static_cast<std::uint32_t>(rng());
        write_data_header(pkt, h);
        break;
      }
      case 1: {  // full ACK
        pkt.resize(kHeaderBytes + 4 * AckPayload::kWords);
        CtrlHeader h;
        h.type = CtrlType::kAck;
        h.info = static_cast<std::uint32_t>(rng());
        write_ctrl_header(pkt, h);
        AckPayload ack;
        ack.ack_seq = udtr::SeqNo{static_cast<std::int32_t>(
            rng() & static_cast<std::uint64_t>(udtr::SeqNo::kMax))};
        ack.rtt_us = static_cast<std::uint32_t>(rng());
        encode_ack_payload(std::span{pkt}.subspan(kHeaderBytes), ack);
        break;
      }
      case 2: {  // NAK with random ranges
        const std::size_t n_ranges = rng() % 200;  // may exceed the cap
        std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>> ranges;
        for (std::size_t k = 0; k < n_ranges; ++k) {
          const auto a = static_cast<std::int32_t>(
              rng() & static_cast<std::uint64_t>(udtr::SeqNo::kMax));
          const auto b = static_cast<std::int32_t>(
              rng() & static_cast<std::uint64_t>(udtr::SeqNo::kMax));
          ranges.emplace_back(udtr::SeqNo{a}, udtr::SeqNo{b});
        }
        const auto words = encode_loss_ranges(ranges);
        pkt.resize(kHeaderBytes + 4 * words.size());
        CtrlHeader h;
        h.type = CtrlType::kNak;
        write_ctrl_header(pkt, h);
        write_words(std::span{pkt}.subspan(kHeaderBytes), words);
        break;
      }
      default: {  // handshake (cookie-bearing 9-word form)
        pkt.resize(kHeaderBytes + 4 * HandshakePayload::kWordsWithCookie);
        CtrlHeader h;
        h.type = CtrlType::kHandshake;
        write_ctrl_header(pkt, h);
        HandshakePayload hs;
        hs.initial_seq = static_cast<std::uint32_t>(rng());
        hs.socket_id = static_cast<std::uint32_t>(rng());
        hs.cookie = rng();
        encode_handshake_payload(std::span{pkt}.subspan(kHeaderBytes), hs);
        break;
      }
    }
    // Mutate: bit flips, truncation, or both.
    if (!pkt.empty() && rng() % 2 == 0) {
      const int flips = 1 + static_cast<int>(rng() % 8);
      for (int f = 0; f < flips; ++f) {
        const std::size_t bit = rng() % (pkt.size() * 8);
        pkt[bit / 8] ^= static_cast<std::uint8_t>(1U << (bit % 8));
      }
    }
    if (rng() % 3 == 0) {
      pkt.resize(rng() % (pkt.size() + 1));
    }
    decode_everything(pkt);
  }
}

TEST(PacketFuzz, DecodersRejectAllSubHeaderBuffers) {
  std::mt19937_64 rng{77};
  for (std::size_t len = 0; len < kHeaderBytes; ++len) {
    std::vector<std::uint8_t> buf(len);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng());
    EXPECT_FALSE(is_control(buf));
    EXPECT_FALSE(decode_data_header(buf).has_value());
    EXPECT_FALSE(decode_ctrl_header(buf).has_value());
  }
}

TEST(PacketFuzz, NakDecodeCapsRanges) {
  // 1000 singleton losses encode to 1000 words; the decoder must stop at
  // kMaxNakRanges.
  std::vector<std::pair<udtr::SeqNo, udtr::SeqNo>> ranges;
  for (std::int32_t i = 0; i < 1000; ++i) {
    ranges.emplace_back(udtr::SeqNo{2 * i}, udtr::SeqNo{2 * i});
  }
  const auto words = encode_loss_ranges(ranges);
  std::vector<std::uint8_t> payload(4 * words.size());
  write_words(payload, words);
  EXPECT_EQ(decode_nak_payload(payload).size(), kMaxNakRanges);
}

TEST(PacketFuzz, TruncatedAckPayloadIsRejected) {
  for (std::size_t len = 0; len < 4 * AckPayload::kWords; ++len) {
    const std::vector<std::uint8_t> payload(len, 0xFF);
    EXPECT_FALSE(decode_ack_payload(payload).has_value());
  }
  for (std::size_t len = 0; len < 4 * HandshakePayload::kWords; ++len) {
    const std::vector<std::uint8_t> payload(len, 0xFF);
    EXPECT_FALSE(decode_handshake_payload(payload).has_value());
  }
}

TEST(PacketFuzz, MsgWordRoundTripsThroughDataHeader) {
  // Every (ff, o, msg_no) combination survives the wire: boundary flags in
  // bits 31..30, the in-order bit at 29, the 29-bit message number below —
  // and the all-zero word stays the stream sentinel.
  std::vector<std::uint8_t> pkt(kHeaderBytes);
  for (const auto b : {MsgBoundary::kMiddle, MsgBoundary::kLast,
                       MsgBoundary::kFirst, MsgBoundary::kSolo}) {
    for (const bool in_order : {false, true}) {
      for (const std::uint32_t no : {1U, 2U, 0x12345U, kMsgNoMask}) {
        DataHeader h;
        h.seq = udtr::SeqNo{7};
        h.msg_word = make_msg_word(b, in_order, no);
        write_data_header(pkt, h);
        const DataHeader r = read_data_header(pkt);
        EXPECT_EQ(msg_boundary(r.msg_word), b);
        EXPECT_EQ(msg_in_order(r.msg_word), in_order);
        EXPECT_EQ(msg_number(r.msg_word), no);
      }
    }
  }
  // A message number above the mask must not leak into the o/ff bits.
  const auto word = make_msg_word(MsgBoundary::kMiddle, false, 0xFFFFFFFFU);
  EXPECT_EQ(msg_boundary(word), MsgBoundary::kMiddle);
  EXPECT_FALSE(msg_in_order(word));
  EXPECT_EQ(msg_number(word), kMsgNoMask);
  // Stream sentinel: word 0 reads back as (middle, unordered, msg 0).
  DataHeader s;
  s.seq = udtr::SeqNo{7};
  write_data_header(pkt, s);
  EXPECT_EQ(read_data_header(pkt).msg_word, 0U);
}

TEST(PacketFuzz, MsgDropDecodeEdges) {
  // Round trip of the explicit two-word form, singleton range included.
  for (const auto& [a, b] : {std::pair<std::int32_t, std::int32_t>{10, 42},
                             {7, 7},
                             {udtr::SeqNo::kMax, 3}}) {  // wrapping range
    MsgDropPayload p;
    p.first = udtr::SeqNo{a};
    p.last = udtr::SeqNo{b};
    std::vector<std::uint8_t> buf(4 * MsgDropPayload::kWords);
    EXPECT_EQ(encode_msg_drop_payload(buf, p), buf.size());
    const auto r = decode_msg_drop_payload(buf);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->first.value(), a);
    EXPECT_EQ(r->last.value(), b);
  }

  // Truncated payloads (every sub-8-byte length) are rejected.
  for (std::size_t len = 0; len < 4 * MsgDropPayload::kWords; ++len) {
    const std::vector<std::uint8_t> payload(len, 0xFF);
    EXPECT_FALSE(decode_msg_drop_payload(payload).has_value());
  }

  // A missing range-open bit (word0 bit31 clear) is not a drop payload.
  std::vector<std::uint8_t> noopen(8);
  store_be32(noopen.data(), 10);
  store_be32(noopen.data() + 4, 42);
  EXPECT_FALSE(decode_msg_drop_payload(noopen).has_value());

  // A range inverted in circular order (first ahead of last by more than
  // half the space) is a fabrication.
  std::vector<std::uint8_t> inverted(8);
  store_be32(inverted.data(), 0x80000000U | 1000U);
  store_be32(inverted.data() + 4, 10U);
  EXPECT_FALSE(decode_msg_drop_payload(inverted).has_value());

  // Reserved bit patterns in word1 (bit31 set on the close word) decode to
  // a 31-bit sequence, never out-of-range values.
  std::mt19937_64 rng{0xD09u};
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::uint8_t> buf(8 + rng() % 9);
    for (auto& byte : buf) byte = static_cast<std::uint8_t>(rng());
    buf[0] |= 0x80U;  // force the open bit so decode proceeds to validation
    if (const auto r = decode_msg_drop_payload(buf)) {
      EXPECT_GE(udtr::SeqNo::offset(r->first, r->last), 0);
      EXPECT_GE(r->first.value(), 0);
      EXPECT_LE(r->first.value(), udtr::SeqNo::kMax);
      EXPECT_GE(r->last.value(), 0);
      EXPECT_LE(r->last.value(), udtr::SeqNo::kMax);
    }
  }
}

TEST(PacketFuzz, HandshakeCookieDecodeEdges) {
  // The 9-word form round-trips the cookie; any length between the legacy
  // 7-word minimum and the full 9 words (a truncated cookie) falls back to
  // the legacy interpretation (cookie 0) instead of reading past the end.
  HandshakePayload hs;
  hs.request_type = kHsRequest;
  hs.initial_seq = 77;
  hs.mss_bytes = 1456;
  hs.socket_id = 42;
  hs.cookie = 0x0123456789ABCDEFULL;
  std::vector<std::uint8_t> full(4 * HandshakePayload::kWordsWithCookie);
  EXPECT_EQ(encode_handshake_payload(full, hs), full.size());
  const auto round = decode_handshake_payload(full);
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round->cookie, hs.cookie);
  EXPECT_EQ(round->socket_id, hs.socket_id);

  for (std::size_t len = 4 * HandshakePayload::kWords;
       len < 4 * HandshakePayload::kWordsWithCookie; ++len) {
    const auto trunc =
        decode_handshake_payload(std::span{full.data(), len});
    ASSERT_TRUE(trunc.has_value());
    EXPECT_EQ(trunc->cookie, 0U);
    EXPECT_EQ(trunc->socket_id, hs.socket_id);
    EXPECT_EQ(trunc->initial_seq, hs.initial_seq);
  }
}

TEST(PacketFuzz, CookieNeverValidatesUnderRandomMutation) {
  CookieKeyring keys;
  HandshakePayload req;
  req.request_type = kHsRequest;
  req.initial_seq = 5;
  req.mss_bytes = 1456;
  req.socket_id = 99;
  const std::uint32_t ip0 = 0x7F000001U;
  const std::uint16_t port0 = 40000;
  const std::uint64_t cookie = keys.make(1000, ip0, port0, req);
  ASSERT_EQ(keys.verify(1000, ip0, port0, req, cookie),
            CookieKeyring::Verdict::kValid);

  std::mt19937_64 rng{123};
  for (int i = 0; i < 2000; ++i) {
    std::uint64_t c = cookie;
    HandshakePayload r = req;
    std::uint32_t ip = ip0;
    std::uint16_t port = port0;
    switch (rng() % 5) {
      case 0:  // flipped cookie bit (MAC or age byte — both must fail)
        c ^= 1ULL << (rng() % 64);
        break;
      case 1:  // wrong source address
        ip ^= 1U << (rng() % 32);
        break;
      case 2:  // wrong source port
        port = static_cast<std::uint16_t>(port ^ (1U << (rng() % 16)));
        break;
      case 3:  // tampered proposal: ISN
        r.initial_seq ^= 1U << (rng() % 32);
        break;
      default:  // tampered proposal: socket id
        r.socket_id ^= 1U << (rng() % 32);
        break;
    }
    EXPECT_NE(keys.verify(1000, ip, port, r, c),
              CookieKeyring::Verdict::kValid);
  }

  // Replay long past the TTL: authentic but stale must not validate.
  EXPECT_NE(keys.verify(1000 + CookieKeyring::kTtlSeconds + 2, ip0, port0,
                        req, cookie),
            CookieKeyring::Verdict::kValid);
}

}  // namespace
}  // namespace udtr::udt
