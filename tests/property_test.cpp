// Cross-cutting property tests (TEST_P sweeps) over the protocol's
// invariants: congestion-control bounds, link conservation/FIFO under
// random load, and full-stack transfer exactness across the MSS grid.
#include <gtest/gtest.h>

#include <future>
#include <random>

#include "cc/udt_cc.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"
#include "udt/socket.hpp"

namespace {

// ------------------------------------------------ UdtCc invariants ---------

struct CcGrid {
  double bandwidth_bps;
  int mss;
};

class UdtCcInvariants : public ::testing::TestWithParam<CcGrid> {};

TEST_P(UdtCcInvariants, IncreaseBoundedAndUnitConsistent) {
  const auto [b, mss] = GetParam();
  const double inc = udtr::cc::UdtCc::increase_for_bandwidth(b, mss);
  // Lower bound: the probing floor.  Upper bound: one decade above the
  // bandwidth itself expressed in packets/SYN.
  EXPECT_GE(inc, (1.0 / 1500.0) * (1500.0 / mss));
  const double b_pkts_per_syn = b / (8.0 * mss) * 0.01;
  EXPECT_LE(inc, std::max(10.0 * b_pkts_per_syn, 1.0 / mss * 1500.0));
  // Bits-per-SYN increment is MSS-invariant (the 1500/MSS correction).
  const double bits1 = inc * mss * 8.0;
  const double bits2 =
      udtr::cc::UdtCc::increase_for_bandwidth(b, 1500) * 1500.0 * 8.0;
  EXPECT_NEAR(bits1, bits2, bits2 * 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, UdtCcInvariants,
    ::testing::Values(CcGrid{1e5, 1500}, CcGrid{1e7, 1500},
                      CcGrid{1e9, 1500}, CcGrid{1e10, 1500},
                      CcGrid{1e9, 500}, CcGrid{1e9, 8948},
                      CcGrid{3.3e8, 1250}, CcGrid{7.7e6, 9000}));

TEST(UdtCcInvariants, PeriodStaysPositiveUnderEventStorm) {
  // Fuzz the controller with a random event storm; the period and window
  // must stay finite and positive throughout.
  std::mt19937_64 rng{99};
  udtr::cc::UdtCc cc;
  double now = 0.0;
  std::int32_t seq = 0;
  for (int i = 0; i < 20000; ++i) {
    now += static_cast<double>(rng() % 20) * 1e-3;
    cc.set_now(now);
    const int ev = static_cast<int>(rng() % 10);
    if (ev < 6) {
      udtr::cc::AckInfo a;
      seq += static_cast<std::int32_t>(rng() % 1000);
      a.ack_seq = udtr::SeqNo{seq};
      a.rtt_s = 1e-4 + static_cast<double>(rng() % 1000) * 1e-3;
      a.recv_rate_pps = static_cast<double>(rng() % 100000);
      a.capacity_pps = static_cast<double>(rng() % 100000);
      a.avail_buffer_pkts = static_cast<double>(rng() % 10000 + 2);
      cc.on_ack(a);
    } else if (ev < 9) {
      cc.on_nak(udtr::SeqNo{seq}, udtr::SeqNo{seq + 50});
    } else {
      cc.on_timeout();
    }
    ASSERT_GT(cc.pkt_send_period_s(), 0.0);
    ASSERT_LE(cc.pkt_send_period_s(), 10.0);
    ASSERT_GE(cc.window_packets(), 1.0);
    ASSERT_TRUE(std::isfinite(cc.window_packets()));
  }
}

// -------------------------------------- link conservation under load -------

class LinkConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LinkConservation, DeliveredPlusDroppedPlusQueuedEqualsEnqueued) {
  using namespace udtr::sim;
  std::mt19937_64 rng{GetParam()};
  Simulator sim;
  Link link{sim, udtr::Bandwidth::mbps(10), 0.001,
            5 + rng() % 50};
  // Random bursty offered load around 2x capacity.
  struct Sink2 final : Consumer {
    void receive(Packet) override { ++n; }
    std::uint64_t n = 0;
  } counter;
  link.set_next(&counter);
  double t = 0.0;
  std::uint64_t offered = 0;
  for (int i = 0; i < 2000; ++i) {
    t += static_cast<double>(rng() % 1000) * 1e-6;
    const int burst = 1 + static_cast<int>(rng() % 8);
    sim.at(t, [&link, burst] {
      for (int k = 0; k < burst; ++k) {
        Packet p;
        p.kind = PacketKind::kPlainUdp;
        p.size_bytes = 1500;
        link.receive(std::move(p));
      }
    });
    offered += static_cast<std::uint64_t>(burst);
  }
  sim.run_all();
  const auto& st = link.stats();
  EXPECT_EQ(st.enqueued, offered);
  EXPECT_EQ(st.delivered + st.dropped, offered);
  EXPECT_EQ(counter.n, st.delivered);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkConservation,
                         ::testing::Values(1, 2, 3, 4));

TEST(LinkFifo, OrderPreservedUnderOverload) {
  using namespace udtr::sim;
  Simulator sim;
  Link link{sim, udtr::Bandwidth::mbps(5), 0.002, 30};
  struct OrderSink final : Consumer {
    void receive(Packet p) override {
      if (last >= 0) {
        EXPECT_GT(p.seq.value(), last);
      }
      last = p.seq.value();
    }
    std::int32_t last = -1;
  } sink;
  link.set_next(&sink);
  std::mt19937_64 rng{7};
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += static_cast<double>(rng() % 3000) * 1e-6;
    sim.at(t, [&link, i] {
      Packet p;
      p.kind = PacketKind::kPlainUdp;
      p.size_bytes = 1500;
      p.seq = udtr::SeqNo{i};
      link.receive(std::move(p));
    });
  }
  sim.run_all();
  EXPECT_GT(sink.last, 0);
}

// -------------------------------------------- full-stack MSS sweep ---------

class SocketMssSweep : public ::testing::TestWithParam<int> {};

TEST_P(SocketMssSweep, LoopbackTransferExactAtEveryMss) {
  using namespace udtr::udt;
  SocketOptions opts;
  opts.mss_bytes = GetParam();
  opts.loss_injection = 0.01;  // exercise retransmission at every size
  opts.loss_seed = 77;
  auto listener = Socket::listen(0, opts);
  ASSERT_NE(listener, nullptr);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(), opts);
  auto server = accepted.get();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  std::vector<std::uint8_t> payload(300 << 10);
  std::mt19937_64 rng{static_cast<std::uint64_t>(GetParam())};
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng());

  auto sent = std::async(std::launch::async, [&] {
    const std::size_t n = client->send(payload);
    client->flush(std::chrono::seconds{60});
    return n;
  });
  std::vector<std::uint8_t> got, buf(1 << 16);
  while (got.size() < payload.size()) {
    const std::size_t n = server->recv(buf, std::chrono::seconds{15});
    if (n == 0) break;
    got.insert(got.end(), buf.begin(), buf.begin() + n);
  }
  EXPECT_EQ(sent.get(), payload.size());
  EXPECT_EQ(got, payload);
  client->close();
  server->close();
}

INSTANTIATE_TEST_SUITE_P(Sizes, SocketMssSweep,
                         ::testing::Values(472, 972, 1456, 4000, 8972));

}  // namespace
