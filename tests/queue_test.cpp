#include "netsim/queue.hpp"

#include <gtest/gtest.h>

#include "netsim/link.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

namespace udtr::sim {
namespace {

TEST(DropTailPolicy, DropsExactlyAtLimit) {
  DropTailPolicy p{3};
  EXPECT_FALSE(p.should_drop(0));
  EXPECT_FALSE(p.should_drop(2));
  EXPECT_TRUE(p.should_drop(3));
  EXPECT_TRUE(p.should_drop(100));
}

TEST(RedPolicy, NeverDropsWhileAverageBelowMinTh) {
  RedPolicy::Params params;
  params.min_th = 5;
  params.max_th = 15;
  params.weight = 1.0;  // average == instantaneous for the test
  RedPolicy p{params};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(p.should_drop(3));
  }
}

TEST(RedPolicy, AlwaysDropsAboveMaxTh) {
  RedPolicy::Params params;
  params.min_th = 5;
  params.max_th = 15;
  params.weight = 1.0;
  RedPolicy p{params};
  EXPECT_TRUE(p.should_drop(20));
}

TEST(RedPolicy, ProbabilisticRegionDropsSome) {
  RedPolicy::Params params;
  params.min_th = 5;
  params.max_th = 15;
  params.max_p = 0.2;
  params.weight = 1.0;
  params.seed = 3;
  RedPolicy p{params};
  int drops = 0;
  for (int i = 0; i < 2000; ++i) {
    if (p.should_drop(10)) ++drops;  // midway: pb ~ 0.1, pa escalates
  }
  EXPECT_GT(drops, 50);
  EXPECT_LT(drops, 1500);
}

TEST(RedPolicy, PhysicalLimitIsHard) {
  RedPolicy::Params params;
  params.limit = 50;
  RedPolicy p{params};
  EXPECT_TRUE(p.should_drop(50));
}

TEST(RedPolicy, EwmaSmoothsBursts) {
  RedPolicy::Params params;
  params.min_th = 5;
  params.max_th = 15;
  params.weight = 0.002;  // slow average
  RedPolicy p{params};
  // A short burst above max_th must not trigger hard drops while the
  // average is still low.
  EXPECT_FALSE(p.should_drop(20));
  EXPECT_LT(p.average_queue(), 1.0);
}

TEST(RedLink, TcpKeepsShorterQueueUnderRed) {
  // RED's point: early random drops keep the standing queue short compared
  // to a deep DropTail buffer filled to the brim by TCP.
  const auto max_depth = [](bool red) {
    Simulator sim;
    DumbbellConfig cfg;
    cfg.bottleneck = Bandwidth::mbps(50);
    cfg.queue_pkts = 200;
    if (red) {
      RedPolicy::Params params;
      params.min_th = 10;
      params.max_th = 60;
      params.limit = 200;
      cfg.red = params;
    }
    Dumbbell net{sim, cfg};
    net.add_tcp_flow({}, 0.020);
    sim.run_until(20.0);
    return net.bottleneck().stats().max_queue_depth;
  };
  EXPECT_LT(max_depth(true), max_depth(false));
}

TEST(RedLink, UdtStillDeliversReliably) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck = Bandwidth::mbps(50);
  RedPolicy::Params params;
  params.min_th = 10;
  params.max_th = 60;
  params.limit = 200;
  cfg.red = params;
  Dumbbell net{sim, cfg};
  UdtFlowConfig flow;
  flow.total_packets = 5000;
  net.add_udt_flow(flow, 0.020);
  sim.run_until(60.0);
  EXPECT_EQ(net.udt_receiver(0).stats().delivered, 5000u);
}

}  // namespace
}  // namespace udtr::sim
