#include "common/seqno.hpp"

#include <gtest/gtest.h>

namespace udtr {
namespace {

TEST(SeqNo, MasksTo31Bits) {
  EXPECT_EQ(SeqNo{-1}.value(), SeqNo::kMax);
  EXPECT_EQ(SeqNo{SeqNo::kMax}.value(), SeqNo::kMax);
  EXPECT_EQ(SeqNo{0}.value(), 0);
}

TEST(SeqNo, BasicComparison) {
  EXPECT_LT(SeqNo::cmp(SeqNo{1}, SeqNo{2}), 0);
  EXPECT_GT(SeqNo::cmp(SeqNo{5}, SeqNo{2}), 0);
  EXPECT_EQ(SeqNo::cmp(SeqNo{7}, SeqNo{7}), 0);
}

TEST(SeqNo, WrapAroundComparison) {
  // kMax precedes 0 across the wrap boundary.
  EXPECT_LT(SeqNo::cmp(SeqNo{SeqNo::kMax}, SeqNo{0}), 0);
  EXPECT_GT(SeqNo::cmp(SeqNo{0}, SeqNo{SeqNo::kMax}), 0);
  EXPECT_LT(SeqNo::cmp(SeqNo{SeqNo::kMax - 5}, SeqNo{10}), 0);
}

TEST(SeqNo, OffsetAcrossWrap) {
  EXPECT_EQ(SeqNo::offset(SeqNo{SeqNo::kMax}, SeqNo{0}), 1);
  EXPECT_EQ(SeqNo::offset(SeqNo{0}, SeqNo{SeqNo::kMax}), -1);
  EXPECT_EQ(SeqNo::offset(SeqNo{SeqNo::kMax - 1}, SeqNo{3}), 5);
  EXPECT_EQ(SeqNo::offset(SeqNo{3}, SeqNo{SeqNo::kMax - 1}), -5);
  EXPECT_EQ(SeqNo::offset(SeqNo{100}, SeqNo{100}), 0);
}

TEST(SeqNo, LengthInclusive) {
  EXPECT_EQ(SeqNo::length(SeqNo{3}, SeqNo{3}), 1);
  EXPECT_EQ(SeqNo::length(SeqNo{3}, SeqNo{7}), 5);
  EXPECT_EQ(SeqNo::length(SeqNo{SeqNo::kMax}, SeqNo{0}), 2);
  EXPECT_EQ(SeqNo::length(SeqNo{SeqNo::kMax - 1}, SeqNo{1}), 4);
}

TEST(SeqNo, NextPrevWrap) {
  EXPECT_EQ(SeqNo{SeqNo::kMax}.next(), SeqNo{0});
  EXPECT_EQ(SeqNo{0}.prev(), SeqNo{SeqNo::kMax});
  EXPECT_EQ(SeqNo{41}.next(), SeqNo{42});
  EXPECT_EQ(SeqNo{42}.prev(), SeqNo{41});
}

TEST(SeqNo, AdvancedBy) {
  EXPECT_EQ(SeqNo{10}.advanced_by(5), SeqNo{15});
  EXPECT_EQ(SeqNo{10}.advanced_by(-5), SeqNo{5});
  EXPECT_EQ(SeqNo{SeqNo::kMax}.advanced_by(1), SeqNo{0});
  EXPECT_EQ(SeqNo{0}.advanced_by(-1), SeqNo{SeqNo::kMax});
  EXPECT_EQ(SeqNo{5}.advanced_by(-10), SeqNo{SeqNo::kMax - 4});
}

TEST(SeqNo, OffsetIsInverseOfAdvance) {
  // Property sweep across the wrap boundary.
  for (std::int32_t base :
       {0, 1, 1000, SeqNo::kMax - 1000, SeqNo::kMax - 1, SeqNo::kMax}) {
    for (std::int32_t d : {-100000, -7, -1, 0, 1, 7, 100000}) {
      const SeqNo a{base};
      const SeqNo b = a.advanced_by(d);
      EXPECT_EQ(SeqNo::offset(a, b), d) << "base=" << base << " d=" << d;
    }
  }
}

TEST(SeqNo, PrecedesFollows) {
  EXPECT_TRUE(SeqNo{1}.precedes(SeqNo{2}));
  EXPECT_TRUE(SeqNo{2}.follows(SeqNo{1}));
  EXPECT_TRUE(SeqNo{SeqNo::kMax}.precedes(SeqNo{0}));
  EXPECT_FALSE(SeqNo{3}.precedes(SeqNo{3}));
}

}  // namespace
}  // namespace udtr
