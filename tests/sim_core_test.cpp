#include "netsim/sim.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace udtr::sim {
namespace {

TEST(Simulator, ExecutesInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(3.0, [&] { order.push_back(3); });
  sim.at(1.0, [&] { order.push_back(1); });
  sim.at(2.0, [&] { order.push_back(2); });
  sim.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulator, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] {
    ++fired;
    sim.after(1.0, [&] { ++fired; });
  });
  sim.run_all();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(2.0, [&] { ++fired; });
  sim.at(3.0, [&] { ++fired; });
  sim.run_until(2.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(5.0);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulator, PastTimestampsClampToNow) {
  Simulator sim;
  double seen = -1.0;
  sim.at(2.0, [&] {
    sim.at(0.5, [&] { seen = sim.now(); });  // in the past -> runs "now"
  });
  sim.run_all();
  EXPECT_DOUBLE_EQ(seen, 2.0);
}

TEST(Simulator, StepReturnsFalseWhenEmpty) {
  Simulator sim;
  EXPECT_FALSE(sim.step());
}

}  // namespace
}  // namespace udtr::sim
