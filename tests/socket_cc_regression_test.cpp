// CC/flow-control regression sweep on real loopback sockets: zero-window
// halt + persist-probe reopen, stale/duplicate-ACK gating of the congestion
// controller, and every pluggable algorithm moving bytes exactly.
#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "udt/congestion.hpp"
#include "udt/packet.hpp"
#include "udt/socket.hpp"

namespace udtr::udt {
namespace {

std::vector<std::uint8_t> make_payload(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::mt19937_64 rng{seed};
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

struct Pair {
  std::unique_ptr<Socket> listener;
  std::unique_ptr<Socket> client;
  std::unique_ptr<Socket> server;
};

Pair make_pair_opts(SocketOptions server_opts, SocketOptions client_opts) {
  Pair p;
  p.listener = Socket::listen(0, server_opts);
  EXPECT_NE(p.listener, nullptr);
  auto accepted = std::async(std::launch::async, [&] {
    return p.listener->accept(std::chrono::seconds{10});
  });
  p.client =
      Socket::connect("127.0.0.1", p.listener->local_port(), client_opts);
  p.server = accepted.get();
  EXPECT_NE(p.client, nullptr);
  EXPECT_NE(p.server, nullptr);
  return p;
}

std::vector<std::uint8_t> pump(Socket& from, Socket& to,
                               const std::vector<std::uint8_t>& payload) {
  auto send_done = std::async(std::launch::async, [&] {
    const std::size_t sent = from.send(payload);
    from.flush(std::chrono::seconds{60});
    return sent;
  });
  std::vector<std::uint8_t> received;
  std::vector<std::uint8_t> buf(1 << 16);
  while (received.size() < payload.size()) {
    const std::size_t n = to.recv(buf, std::chrono::seconds{15});
    if (n == 0) break;
    received.insert(received.end(), buf.begin(), buf.begin() + n);
  }
  EXPECT_EQ(send_done.get(), payload.size());
  return received;
}

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds deadline) {
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  }
  return pred();
}

void send_raw_ctrl(UdpChannel& raw, std::uint16_t dst_port, CtrlType type,
                   std::uint32_t dst_socket,
                   std::span<const std::uint32_t> payload_words,
                   std::uint32_t info = 0) {
  std::vector<std::uint8_t> pkt(kHeaderBytes + 4 * payload_words.size());
  CtrlHeader hdr;
  hdr.type = type;
  hdr.info = info;
  hdr.dst_socket = dst_socket;
  write_ctrl_header(pkt, hdr);
  write_words(std::span{pkt}.subspan(kHeaderBytes), payload_words);
  raw.send_to(Endpoint{0x7F000001u, dst_port}, pkt);
}

// --- zero receive window: halt, probe, reopen ------------------------------
//
// The receiver advertises its true free buffer, down to zero (historically a
// zero was rewritten to 2, so the sender forever trickled into a full
// buffer).  The sender must halt NEW data on a zero window, keep the
// connection alive with persist probes (TCP persist-timer analogue), and
// resume promptly once the application drains.
void run_zero_window_scenario(bool exclusive_port) {
  SocketOptions server;
  server.rcv_buffer_pkts = 64;  // tiny receive buffer: fills in one burst
  server.exclusive_port = exclusive_port;
  SocketOptions client;
  client.exclusive_port = exclusive_port;
  Pair p = make_pair_opts(server, client);
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);

  // ~720 packets against a 64-packet receive buffer nobody is draining.
  const auto payload = make_payload(1 << 20, 77);
  ASSERT_EQ(p.client->send(payload), payload.size());  // buffered sender-side

  // The advertised window must close (reach the sender as avail == 0).
  ASSERT_TRUE(wait_until(
      [&] {
        const PerfStats s = p.client->perf();
        return s.acks_recv > 0 && s.peer_window_pkts <= 0.0;
      },
      std::chrono::milliseconds{5000}))
      << "peer window never closed; peer_window_pkts="
      << p.client->perf().peer_window_pkts;

  // Sender halts: no new data and no retransmit storm while closed.
  std::this_thread::sleep_for(std::chrono::milliseconds{200});  // quiesce
  const PerfStats before = p.client->perf();
  std::this_thread::sleep_for(std::chrono::milliseconds{500});
  const PerfStats during = p.client->perf();
  EXPECT_LE((during.data_packets_sent + during.retransmitted) -
                (before.data_packets_sent + before.retransmitted),
            2u)
      << "sender kept transmitting into a zero window";
  EXPECT_EQ(p.client->state(), ConnState::kEstablished);

  // ... but it is not silent: persist probes keep the window state fresh.
  EXPECT_TRUE(wait_until(
      [&] { return p.client->perf().zero_window_probes > 0; },
      std::chrono::milliseconds{2000}))
      << "no zero-window probes while halted with data pending";

  // The application drains: the window-update ACK reopens the flow and the
  // whole payload arrives byte-exact.
  std::vector<std::uint8_t> received;
  std::vector<std::uint8_t> buf(1 << 16);
  auto flushed = std::async(std::launch::async, [&] {
    return p.client->flush(std::chrono::seconds{60});
  });
  while (received.size() < payload.size()) {
    const std::size_t n = p.server->recv(buf, std::chrono::seconds{15});
    ASSERT_GT(n, 0u) << "transfer stalled after drain at " << received.size()
                     << "/" << payload.size() << " bytes";
    received.insert(received.end(), buf.begin(), buf.begin() + n);
  }
  EXPECT_TRUE(flushed.get());
  EXPECT_EQ(received, payload);
  EXPECT_GT(p.client->perf().peer_window_pkts, 0.0);
  p.client->close();
  p.server->close();
}

TEST(SocketZeroWindow, SenderHaltsAndResumesAfterDrain) {
  run_zero_window_scenario(/*exclusive_port=*/false);
}

TEST(SocketZeroWindow, SenderHaltsAndResumesAfterDrainExclusivePort) {
  run_zero_window_scenario(/*exclusive_port=*/true);
}

// The drain-triggered window update clears the receiver's advertised_zero
// state the moment the ACK is SENT; if that one unacknowledged control
// packet is lost, only the sender's persist probes can rediscover the open
// window — so a keepalive must elicit a current-window ACK unconditionally,
// not only while the advertisement is still zero.  Direct form: an idle
// established socket (which would otherwise never ACK — nothing has ever
// arrived) must answer a raw keepalive.
TEST(SocketZeroWindow, KeepaliveAlwaysElicitsWindowAck) {
  Pair p = make_pair_opts({}, {});
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);
  const std::uint64_t before = p.server->perf().acks_sent;

  UdpChannel raw;
  ASSERT_TRUE(raw.open(0));
  send_raw_ctrl(raw, p.server->local_port(), CtrlType::kKeepAlive,
                p.server->id(), {});
  EXPECT_TRUE(wait_until(
      [&] { return p.server->perf().acks_sent > before; },
      std::chrono::milliseconds{2000}))
      << "keepalive probe went unanswered with a non-zero window";
  p.client->close();
  p.server->close();
}

// End-to-end form of the same deadlock: the receiver drains while a black
// hole swallows its window-update ACK.  Recovery must come from the persist
// probe / unconditional probe answer, and the transfer must finish
// byte-exact.
TEST(SocketZeroWindow, ReopensWhenWindowUpdateAckIsLost) {
  auto faults = std::make_shared<FaultInjector>(FaultConfig{});
  SocketOptions server;
  server.rcv_buffer_pkts = 64;
  server.faults = faults;
  Pair p = make_pair_opts(server, {});
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);

  const auto payload = make_payload(1 << 20, 99);
  ASSERT_EQ(p.client->send(payload), payload.size());
  ASSERT_TRUE(wait_until(
      [&] {
        const PerfStats s = p.client->perf();
        return s.acks_recv > 0 && s.peer_window_pkts <= 0.0;
      },
      std::chrono::milliseconds{5000}))
      << "peer window never closed";
  std::this_thread::sleep_for(std::chrono::milliseconds{200});  // quiesce

  // Drain a chunk while everything on the server's port is swallowed: the
  // reopening window update is lost, exactly the deadlock scenario.
  faults->set_black_hole(true);
  std::vector<std::uint8_t> received;
  std::vector<std::uint8_t> buf(1 << 16);
  while (received.size() < 32u * 1456u) {
    const std::size_t n = p.server->recv(buf, std::chrono::seconds{5});
    ASSERT_GT(n, 0u) << "server buffer should have been full";
    received.insert(received.end(), buf.begin(), buf.begin() + n);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds{100});
  faults->set_black_hole(false);

  // The sender still believes the window is zero; its probes must reopen
  // it and the rest of the payload must arrive byte-exact.
  ASSERT_TRUE(wait_until(
      [&] { return p.client->perf().peer_window_pkts > 0.0; },
      std::chrono::milliseconds{3000}))
      << "window never reopened after the lost window update";
  auto flushed = std::async(std::launch::async, [&] {
    return p.client->flush(std::chrono::seconds{60});
  });
  while (received.size() < payload.size()) {
    const std::size_t n = p.server->recv(buf, std::chrono::seconds{15});
    ASSERT_GT(n, 0u) << "transfer stalled at " << received.size() << "/"
                     << payload.size() << " bytes";
    received.insert(received.end(), buf.begin(), buf.begin() + n);
  }
  EXPECT_TRUE(flushed.get());
  EXPECT_EQ(received, payload);
  EXPECT_EQ(p.client->state(), ConnState::kEstablished);
  p.client->close();
  p.server->close();
}

// --- stale / duplicate ACK gating ------------------------------------------

TEST(SocketStaleAck, ReorderedAcksAreGatedAndTransferStaysExact) {
  // Heavy reordering on the client's receive direction scrambles the
  // SYN-clocked ACK stream: late ACKs arrive with older cumulative points
  // and stale receiver statistics.  They must be counted and withheld from
  // the congestion controller while the transfer still lands byte-exact.
  FaultConfig cfg;
  cfg.recv.reorder_p = 0.25;
  cfg.recv.reorder_hold = 4;
  cfg.seed = 20040807;
  SocketOptions client;
  client.faults = std::make_shared<FaultInjector>(cfg);
  client.max_bandwidth_mbps = 60.0;  // keep the ACK stream long enough
  Pair p = make_pair_opts({}, client);
  ASSERT_NE(p.client, nullptr);

  const auto payload = make_payload(2 << 20, 21);
  EXPECT_EQ(pump(*p.client, *p.server, payload), payload);
  EXPECT_GT(p.client->perf().stale_acks_dropped, 0u);
  EXPECT_EQ(p.client->state(), ConnState::kEstablished);
  p.client->close();
  p.server->close();
}

TEST(SocketStaleAck, ForgedStaleAckDoesNotMoveTheController) {
  Pair p = make_pair_opts({}, {});
  ASSERT_NE(p.client, nullptr);

  // A clean transfer, fully acknowledged, leaves the controller at rest.
  const auto payload = make_payload(100 << 10, 22);
  ASSERT_EQ(pump(*p.client, *p.server, payload), payload);
  std::this_thread::sleep_for(std::chrono::milliseconds{100});
  const PerfStats rest = p.client->perf();

  // Forge a duplicate ACK carrying absurd receiver statistics (line-rate
  // arrival speed, huge capacity, tiny RTT).  Its ack id (hdr.info == 0) is
  // stale and its cumulative point does not advance snd_una, so the
  // controller must never see it.
  UdpChannel raw;
  ASSERT_TRUE(raw.open(0));
  std::array<std::uint32_t, AckPayload::kWords> words{};
  words[0] = 1;          // ancient cumulative point
  words[1] = 1;          // 1 us RTT
  words[2] = 1;
  words[3] = 1000000;    // vast buffer
  words[4] = 99999999;   // absurd arrival speed
  words[5] = 99999999;   // absurd capacity
  send_raw_ctrl(raw, p.client->local_port(), CtrlType::kAck, p.client->id(),
                words);

  ASSERT_TRUE(wait_until(
      [&] { return p.client->perf().stale_acks_dropped >
                   rest.stale_acks_dropped; },
      std::chrono::milliseconds{2000}));
  const PerfStats after = p.client->perf();
  EXPECT_DOUBLE_EQ(after.send_period_us, rest.send_period_us);
  EXPECT_DOUBLE_EQ(after.window_pkts, rest.window_pkts);
  EXPECT_EQ(p.client->state(), ConnState::kEstablished);

  // The connection still works.
  const auto payload2 = make_payload(64 << 10, 23);
  EXPECT_EQ(pump(*p.client, *p.server, payload2), payload2);
  p.client->close();
  p.server->close();
}

TEST(SocketStaleAck, ForgedFutureAckCannotCloseTheWindow) {
  Pair p = make_pair_opts({}, {});
  ASSERT_NE(p.client, nullptr);

  const auto payload = make_payload(100 << 10, 24);
  ASSERT_EQ(pump(*p.client, *p.server, payload), payload);
  std::this_thread::sleep_for(std::chrono::milliseconds{100});
  const PerfStats rest = p.client->perf();
  ASSERT_GT(rest.peer_window_pkts, 0.0);

  // Far-future cumulative point + far-future ack id + zero free buffer: one
  // such forgery used to close the send window AND poison the ack-id
  // freshness baseline, so every later genuine ACK compared as stale — a
  // single-packet permanent stall.  The cumulative point lies outside
  // [snd_una, snd_next], so the advertisement must be ignored outright.
  UdpChannel raw;
  ASSERT_TRUE(raw.open(0));
  std::array<std::uint32_t, AckPayload::kWords> words{};
  words[0] = 0x20000000u;  // wild cumulative point
  words[1] = 1000;
  words[2] = 500;
  words[3] = 0;  // "no buffer left"
  words[4] = 1;
  words[5] = 1;
  send_raw_ctrl(raw, p.client->local_port(), CtrlType::kAck, p.client->id(),
                words, /*info=*/0x40000000u);

  ASSERT_TRUE(wait_until(
      [&] {
        return p.client->perf().stale_acks_dropped > rest.stale_acks_dropped;
      },
      std::chrono::milliseconds{2000}));
  EXPECT_GT(p.client->perf().peer_window_pkts, 0.0)
      << "an out-of-window forged ACK closed the send window";

  // The connection still moves data (pre-fix this stalled forever).
  const auto payload2 = make_payload(64 << 10, 25);
  EXPECT_EQ(pump(*p.client, *p.server, payload2), payload2);
  p.client->close();
  p.server->close();
}

TEST(SocketStaleAck, ForgedInWindowZeroAckRecoversViaProbes) {
  Pair p = make_pair_opts({}, {});
  ASSERT_NE(p.client, nullptr);

  const auto payload = make_payload(100 << 10, 26);
  ASSERT_EQ(pump(*p.client, *p.server, payload), payload);
  std::this_thread::sleep_for(std::chrono::milliseconds{200});  // fully acked

  // An attacker who knows the in-window state can forge a plausible pure
  // window update (cumulative point == snd_una) with a far-future ack id
  // and a zero advertisement.  That may close the window — but must not
  // keep it closed: persist probes elicit genuine ACKs whose in-window
  // advertisements are trusted while the sender is stalled, even though
  // their ids compare as stale against the poisoned baseline.
  const std::size_t mss = 1456;  // SocketOptions default; default ISN is 0
  const auto pkts =
      static_cast<std::uint32_t>((payload.size() + mss - 1) / mss);
  UdpChannel raw;
  ASSERT_TRUE(raw.open(0));
  std::array<std::uint32_t, AckPayload::kWords> words{};
  words[0] = pkts;  // == snd_una after the fully-acked transfer
  words[1] = 1000;
  words[2] = 500;
  words[3] = 0;  // forged closed window
  words[4] = 1;
  words[5] = 1;
  send_raw_ctrl(raw, p.client->local_port(), CtrlType::kAck, p.client->id(),
                words, /*info=*/0x40000000u);
  ASSERT_TRUE(wait_until(
      [&] { return p.client->perf().peer_window_pkts <= 0.0; },
      std::chrono::milliseconds{2000}))
      << "in-window forgery unexpectedly rejected (test setup drifted?)";

  // New data first waits on the forged zero window, then the probe path
  // recovers it; the transfer must complete byte-exact.
  const auto payload2 = make_payload(64 << 10, 27);
  EXPECT_EQ(pump(*p.client, *p.server, payload2), payload2);
  EXPECT_GT(p.client->perf().peer_window_pkts, 0.0);
  EXPECT_EQ(p.client->state(), ConnState::kEstablished);
  p.client->close();
  p.server->close();
}

// --- delay-trend warnings on real sockets ----------------------------------

TEST(SocketDelayWarn, WarningReachesADelayAwareController) {
  SocketOptions client;
  client.congestion = "vegas";
  Pair p = make_pair_opts({}, client);
  ASSERT_NE(p.client, nullptr);

  // Grow the window past its floor first so the decrease is observable.
  const auto payload = make_payload(256 << 10, 40);
  ASSERT_EQ(pump(*p.client, *p.server, payload), payload);
  std::this_thread::sleep_for(std::chrono::milliseconds{100});
  const PerfStats rest = p.client->perf();
  ASSERT_GT(rest.window_pkts, 2.0);

  UdpChannel raw;
  ASSERT_TRUE(raw.open(0));
  send_raw_ctrl(raw, p.client->local_port(), CtrlType::kDelayWarn,
                p.client->id(), {});
  ASSERT_TRUE(wait_until(
      [&] { return p.client->perf().delay_warnings_recv > 0; },
      std::chrono::milliseconds{2000}));
  EXPECT_LT(p.client->perf().window_pkts, rest.window_pkts)
      << "vegas ignored the delay warning";
  p.client->close();
  p.server->close();
}

TEST(SocketDelayWarn, DefaultControllerTreatsWarningAsNoOp) {
  Pair p = make_pair_opts({}, {});
  ASSERT_NE(p.client, nullptr);

  const auto payload = make_payload(100 << 10, 41);
  ASSERT_EQ(pump(*p.client, *p.server, payload), payload);
  std::this_thread::sleep_for(std::chrono::milliseconds{100});
  const PerfStats rest = p.client->perf();

  UdpChannel raw;
  ASSERT_TRUE(raw.open(0));
  send_raw_ctrl(raw, p.client->local_port(), CtrlType::kDelayWarn,
                p.client->id(), {});
  ASSERT_TRUE(wait_until(
      [&] { return p.client->perf().delay_warnings_recv > 0; },
      std::chrono::milliseconds{2000}));
  // UdtCc without delay_trend_mode ignores the event entirely.
  EXPECT_DOUBLE_EQ(p.client->perf().send_period_us, rest.send_period_us);
  EXPECT_DOUBLE_EQ(p.client->perf().window_pkts, rest.window_pkts);
  p.client->close();
  p.server->close();
}

TEST(SocketDelayWarn, ReceiverEmissionPathIsTransferSafe) {
  // Emission depends on real loopback delay noise, so only the plumbing is
  // asserted: with the receiving peer detecting trends (and possibly
  // sending kDelayWarn), the transfer stays byte-exact and healthy.
  SocketOptions server;
  server.delay_warnings = true;
  SocketOptions client;
  client.max_bandwidth_mbps = 200.0;
  Pair p = make_pair_opts(server, client);
  ASSERT_NE(p.client, nullptr);

  const auto payload = make_payload(2 << 20, 42);
  EXPECT_EQ(pump(*p.client, *p.server, payload), payload);
  EXPECT_EQ(p.client->state(), ConnState::kEstablished);
  // Delivery counts can trail emission (in-flight warnings, UDP), never
  // exceed it.
  EXPECT_LE(p.client->perf().delay_warnings_recv,
            p.server->perf().delay_warnings_sent);
  p.client->close();
  p.server->close();
}

// --- pluggable algorithms on real sockets ----------------------------------

TEST(SocketCcAlgo, EveryBuiltinAlgorithmTransfersExactly) {
  for (const std::string& name : congestion_names()) {
    SocketOptions client;
    client.congestion = name;
    client.loss_injection = 0.02;  // exercise the on_nak path too
    client.loss_seed = 7;
    Pair p = make_pair_opts({}, client);
    ASSERT_NE(p.client, nullptr) << name;
    ASSERT_NE(p.server, nullptr) << name;
    EXPECT_EQ(p.client->perf().cc_name, name) << name;
    EXPECT_STREQ(p.client->congestion().name(), name.c_str());

    const auto payload = make_payload(512 << 10, 30);
    EXPECT_EQ(pump(*p.client, *p.server, payload), payload) << name;
    EXPECT_EQ(p.client->state(), ConnState::kEstablished) << name;
    p.client->close();
    p.server->close();
  }
}

TEST(SocketCcAlgo, UnknownAlgorithmNameIsRejected) {
  SocketOptions bad;
  bad.congestion = "cubic9";
  EXPECT_EQ(Socket::listen(0, bad), nullptr);
  EXPECT_EQ(Socket::connect("127.0.0.1", 9, bad), nullptr);
}

TEST(SocketCcAlgo, CustomFactoryOverridesNamedAlgorithm) {
  SocketOptions client;
  client.congestion = "udt";  // the factory must win over the name
  client.congestion_factory = [](const CcConfig& cfg) {
    return make_congestion("reno-sack", cfg);
  };
  Pair p = make_pair_opts({}, client);
  ASSERT_NE(p.client, nullptr);
  EXPECT_EQ(p.client->perf().cc_name, "reno-sack");

  const auto payload = make_payload(256 << 10, 31);
  EXPECT_EQ(pump(*p.client, *p.server, payload), payload);
  p.client->close();
  p.server->close();
}

}  // namespace
}  // namespace udtr::udt
