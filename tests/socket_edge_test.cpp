// Socket lifecycle edge cases: empty operations, timeouts, teardown during
// active transfer, and bind conflicts.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "udt/socket.hpp"

namespace udtr::udt {
namespace {

TEST(SocketEdge, AcceptTimesOutQuicklyWithNoClient) {
  auto listener = Socket::listen(0);
  ASSERT_NE(listener, nullptr);
  const auto t0 = std::chrono::steady_clock::now();
  auto s = listener->accept(std::chrono::milliseconds{300});
  EXPECT_EQ(s, nullptr);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_LT(elapsed, std::chrono::milliseconds{1500});
}

TEST(SocketEdge, BindConflictFails) {
  auto a = Socket::listen(0);
  ASSERT_NE(a, nullptr);
  auto b = Socket::listen(a->local_port());
  EXPECT_EQ(b, nullptr);
}

TEST(SocketEdge, ZeroLengthSendIsANoOp) {
  auto listener = Socket::listen(0);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port());
  auto server = accepted.get();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);
  EXPECT_EQ(client->send({}), 0u);
  EXPECT_TRUE(client->flush(std::chrono::seconds{1}));
  client->close();
  server->close();
}

TEST(SocketEdge, CloseDuringActiveTransferDoesNotHang) {
  auto listener = Socket::listen(0);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port());
  auto server = accepted.get();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  std::atomic<bool> stop{false};
  auto pump = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> block(1 << 20, 0x33);
    while (!stop && client->send(block) > 0) {
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds{100});
  const auto t0 = std::chrono::steady_clock::now();
  client->close();  // tears down mid-flight
  stop = true;
  pump.get();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds{3});
  // The peer observes the shutdown rather than blocking forever.
  std::vector<std::uint8_t> buf(1 << 16);
  while (server->recv(buf, std::chrono::milliseconds{500}) > 0) {
  }
  server->close();
}

TEST(SocketEdge, SendAfterCloseReturnsZero) {
  auto listener = Socket::listen(0);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port());
  auto server = accepted.get();
  ASSERT_NE(client, nullptr);
  client->close();
  const std::vector<std::uint8_t> data(100, 1);
  EXPECT_EQ(client->send(data), 0u);
  EXPECT_TRUE(client->closed());
  if (server) server->close();
}

TEST(SocketEdge, FlushOnIdleConnectionSucceedsImmediately) {
  auto listener = Socket::listen(0);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port());
  auto server = accepted.get();
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->flush(std::chrono::milliseconds{100}));
  client->close();
  server->close();
}

TEST(SocketEdge, PerfOnFreshConnectionIsZeroed) {
  auto listener = Socket::listen(0);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port());
  auto server = accepted.get();
  ASSERT_NE(client, nullptr);
  const PerfStats p = client->perf();
  EXPECT_EQ(p.data_packets_sent, 0u);
  EXPECT_EQ(p.bytes_sent, 0u);
  EXPECT_EQ(p.retransmitted, 0u);
  client->close();
  server->close();
}

}  // namespace
}  // namespace udtr::udt
