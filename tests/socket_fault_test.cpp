// Real-socket fault injection and connection-lifecycle hardening: the
// loopback stack under combined drop / reorder / outage, peer death and EXP
// escalation, crafted hostile control packets, and graceful shutdown.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <random>
#include <span>
#include <thread>
#include <vector>

#include "udt/multiplexer.hpp"
#include "udt/packet.hpp"
#include "udt/socket.hpp"

namespace udtr::udt {
namespace {

std::vector<std::uint8_t> make_payload(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::mt19937_64 rng{seed};
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

struct Pair {
  std::unique_ptr<Socket> listener;
  std::unique_ptr<Socket> client;
  std::unique_ptr<Socket> server;
};

Pair make_pair_opts(SocketOptions server_opts, SocketOptions client_opts) {
  Pair p;
  p.listener = Socket::listen(0, server_opts);
  EXPECT_NE(p.listener, nullptr);
  auto accepted = std::async(std::launch::async, [&] {
    return p.listener->accept(std::chrono::seconds{10});
  });
  p.client =
      Socket::connect("127.0.0.1", p.listener->local_port(), client_opts);
  p.server = accepted.get();
  EXPECT_NE(p.client, nullptr);
  EXPECT_NE(p.server, nullptr);
  return p;
}

std::vector<std::uint8_t> pump(Socket& from, Socket& to,
                               const std::vector<std::uint8_t>& payload,
                               std::chrono::seconds per_recv_timeout =
                                   std::chrono::seconds{15}) {
  auto send_done = std::async(std::launch::async, [&] {
    const std::size_t sent = from.send(payload);
    from.flush(std::chrono::seconds{60});
    return sent;
  });
  std::vector<std::uint8_t> received;
  std::vector<std::uint8_t> buf(1 << 16);
  while (received.size() < payload.size()) {
    const std::size_t n = to.recv(buf, per_recv_timeout);
    if (n == 0) break;
    received.insert(received.end(), buf.begin(), buf.begin() + n);
  }
  EXPECT_EQ(send_done.get(), payload.size());
  return received;
}

// --- the acceptance scenario: combined faults, exact delivery --------------

TEST(SocketFault, TransferExactUnderDropReorderAndBurstOutage) {
  FaultConfig cfg;
  cfg.send.drop_p = 0.10;     // 10% loss client -> server (data AND control)
  cfg.recv.drop_p = 0.10;     // 10% loss server -> client (ACKs, NAKs)
  cfg.send.reorder_p = 0.02;  // plus reordering both directions
  cfg.send.reorder_hold = 3;
  cfg.recv.reorder_p = 0.02;
  cfg.recv.reorder_hold = 3;
  cfg.seed = 20040807;
  auto faults = std::make_shared<FaultInjector>(cfg);

  SocketOptions client;
  client.faults = faults;
  // Cap the rate so the transfer spans the outage instead of finishing in
  // a few milliseconds of loopback burst.
  client.max_bandwidth_mbps = 60.0;
  Pair p = make_pair_opts({}, client);
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);

  // One 200 ms burst outage, hitting mid-transfer.
  faults->schedule_outage(std::chrono::milliseconds{100},
                          std::chrono::milliseconds{200});

  const auto payload = make_payload(2 << 20, 42);
  const auto got = pump(*p.client, *p.server, payload);
  EXPECT_EQ(got.size(), payload.size());  // no loss, no duplication
  EXPECT_EQ(got, payload);                // ... and byte-exact
  EXPECT_GT(faults->stats(FaultDir::kSend).dropped, 0u);
  EXPECT_GT(faults->stats(FaultDir::kRecv).dropped, 0u);
  EXPECT_GT(faults->stats(FaultDir::kSend).outage_dropped +
                faults->stats(FaultDir::kRecv).outage_dropped,
            0u);
  EXPECT_EQ(p.client->state(), ConnState::kEstablished);
  p.client->close();
  p.server->close();
}

// --- peer death: EXP escalation to kBroken ---------------------------------

TEST(SocketFault, PeerVanishBreaksSenderWithinExpBudget) {
  auto faults = std::make_shared<FaultInjector>(FaultConfig{});
  SocketOptions client;
  client.faults = faults;
  client.min_exp_timeout_s = 0.05;
  client.max_exp_timeouts = 5;
  client.snd_buffer_bytes = 128 << 10;  // small, so send() must block
  Pair p = make_pair_opts({}, client);
  ASSERT_NE(p.client, nullptr);

  // Warm up so the client has a measured RTT (otherwise the EXP base uses
  // the conservative 100 ms prior and the budget below quadruples).
  const auto warmup = make_payload(64 << 10, 6);
  ASSERT_EQ(pump(*p.client, *p.server, warmup), warmup);

  // Then the peer vanishes: nothing gets in or out any more.
  faults->set_black_hole(true);

  // Escalation budget: base 0.05 s with factors 1,2,4,8,16,16 before the
  // 6th timeout exceeds max_exp_timeouts=5 -> ~2.35 s.  Generous ceiling.
  const auto payload = make_payload(1 << 20, 7);
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t sent = p.client->send(payload);
  const auto elapsed = std::chrono::steady_clock::now() - t0;

  EXPECT_LT(sent, payload.size());  // did NOT pretend everything went out
  EXPECT_LT(elapsed, std::chrono::seconds{10});
  EXPECT_EQ(p.client->state(), ConnState::kBroken);
  EXPECT_EQ(p.client->last_error(), SocketError::kConnectionBroken);
  EXPECT_TRUE(p.client->broken());

  // Further operations fail fast instead of hanging.
  const auto t1 = std::chrono::steady_clock::now();
  EXPECT_EQ(p.client->send(payload), 0u);
  std::vector<std::uint8_t> buf(1024);
  EXPECT_EQ(p.client->recv(buf, std::chrono::seconds{30}), 0u);
  EXPECT_FALSE(p.client->flush(std::chrono::seconds{30}));
  EXPECT_LT(std::chrono::steady_clock::now() - t1, std::chrono::seconds{2});

  p.client->close();
  EXPECT_EQ(p.client->state(), ConnState::kBroken);  // close keeps the verdict
  p.server->close();
}

TEST(SocketFault, ExpBackoffFactorIsCappedAt16) {
  // With the cap, 7 timeouts take 0.05*(1+2+4+8+16+16+16) ~= 3.15 s; without
  // it they would take 0.05*(1+2+4+8+16+32+64) ~= 6.35 s.  The wall-clock
  // bound is the observable difference.
  auto faults = std::make_shared<FaultInjector>(FaultConfig{});
  SocketOptions client;
  client.faults = faults;
  client.min_exp_timeout_s = 0.05;
  client.max_exp_timeouts = 6;
  client.snd_buffer_bytes = 128 << 10;
  Pair p = make_pair_opts({}, client);
  ASSERT_NE(p.client, nullptr);

  const auto warmup = make_payload(64 << 10, 66);
  ASSERT_EQ(pump(*p.client, *p.server, warmup), warmup);

  faults->set_black_hole(true);
  const auto payload = make_payload(1 << 20, 8);
  const auto t0 = std::chrono::steady_clock::now();
  (void)p.client->send(payload);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(p.client->state(), ConnState::kBroken);
  EXPECT_GE(elapsed, std::chrono::milliseconds{2500});
  EXPECT_LT(elapsed, std::chrono::milliseconds{5500});
  p.client->close();
  p.server->close();
}

// --- EXP timer semantics ----------------------------------------------------

TEST(SocketFault, IdleConnectionSendsKeepalivesAndCountsNoTimeouts) {
  SocketOptions opts;
  opts.min_exp_timeout_s = 0.1;
  Pair p = make_pair_opts(opts, opts);
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);

  std::this_thread::sleep_for(std::chrono::milliseconds{800});

  const PerfStats cs = p.client->perf();
  const PerfStats ss = p.server->perf();
  // Nothing was ever unacknowledged: no timeout may be counted (§3.5) ...
  EXPECT_EQ(cs.timeouts, 0u);
  EXPECT_EQ(ss.timeouts, 0u);
  // ... but the idle link is kept warm.
  EXPECT_GT(cs.keepalives_sent + ss.keepalives_sent, 0u);
  EXPECT_EQ(p.client->state(), ConnState::kEstablished);
  EXPECT_EQ(p.server->state(), ConnState::kEstablished);
  EXPECT_EQ(p.client->consecutive_exp_timeouts(), 0);
  p.client->close();
  p.server->close();
}

TEST(SocketFault, ExpEscalationUnwindsWhenPeerRecovers) {
  auto faults = std::make_shared<FaultInjector>(FaultConfig{});
  SocketOptions client;
  client.faults = faults;
  client.min_exp_timeout_s = 0.05;
  client.max_bandwidth_mbps = 40.0;
  Pair p = make_pair_opts({}, client);
  ASSERT_NE(p.client, nullptr);

  // A 300 ms outage starting almost immediately: with data in flight the
  // EXP timer must escalate (0.05 s + 0.1 s waits fit inside the outage)...
  faults->schedule_outage(std::chrono::milliseconds{50},
                          std::chrono::milliseconds{300});
  const auto payload = make_payload(1 << 20, 9);
  const auto got = pump(*p.client, *p.server, payload);

  // ... yet the transfer completes exactly once the link returns, and the
  // first control packet through resets the escalation.
  EXPECT_EQ(got, payload);
  EXPECT_GE(p.client->perf().timeouts, 1u);
  EXPECT_EQ(p.client->consecutive_exp_timeouts(), 0);
  EXPECT_EQ(p.client->state(), ConnState::kEstablished);
  EXPECT_EQ(p.client->last_error(), SocketError::kNone);
  p.client->close();
  p.server->close();
}

// --- hostile / corrupt control traffic --------------------------------------

// Sends one crafted control packet from a raw channel to `dst_port`.
void send_raw_ctrl(UdpChannel& raw, std::uint16_t dst_port, CtrlType type,
                   std::uint32_t dst_socket,
                   std::span<const std::uint32_t> payload_words) {
  std::vector<std::uint8_t> pkt(kHeaderBytes + 4 * payload_words.size());
  CtrlHeader hdr;
  hdr.type = type;
  hdr.dst_socket = dst_socket;
  write_ctrl_header(pkt, hdr);
  write_words(std::span{pkt}.subspan(kHeaderBytes), payload_words);
  raw.send_to(Endpoint{0x7F000001u, dst_port}, pkt);
}

TEST(SocketFault, CorruptNakCannotTriggerRetransmitStorm) {
  Pair p = make_pair_opts({}, {});
  ASSERT_NE(p.client, nullptr);

  // Complete a clean transfer so the send window is fully acknowledged.
  const auto payload = make_payload(100 << 10, 10);
  EXPECT_EQ(pump(*p.client, *p.server, payload), payload);
  const std::uint64_t retrans_before = p.client->perf().retransmitted;

  UdpChannel raw;
  ASSERT_TRUE(raw.open(0));
  const std::uint32_t id = p.client->id();
  const std::uint16_t port = p.client->local_port();

  // Inverted range [100, 50], far-future range, far-past range, and an
  // oversized payload of 1000 singletons.
  send_raw_ctrl(raw, port, CtrlType::kNak, id,
                std::array<std::uint32_t, 2>{100U | 0x80000000U, 50U});
  send_raw_ctrl(raw, port, CtrlType::kNak, id,
                std::array<std::uint32_t, 2>{0x80000000U | 500000U, 500100U});
  std::vector<std::uint32_t> storm(1000);
  for (std::size_t i = 0; i < storm.size(); ++i) {
    storm[i] = static_cast<std::uint32_t>(1000000 + i);
  }
  send_raw_ctrl(raw, port, CtrlType::kNak, id, storm);

  std::this_thread::sleep_for(std::chrono::milliseconds{300});

  const PerfStats cs = p.client->perf();
  EXPECT_EQ(cs.retransmitted, retrans_before);  // no storm
  EXPECT_GT(cs.invalid_nak_ranges, 0u);
  EXPECT_EQ(p.client->state(), ConnState::kEstablished);

  // The connection still works.
  const auto payload2 = make_payload(50 << 10, 11);
  EXPECT_EQ(pump(*p.client, *p.server, payload2), payload2);
  p.client->close();
  p.server->close();
}

TEST(SocketFault, WrongDstSocketAndUnknownTypesAreRejected) {
  Pair p = make_pair_opts({}, {});
  ASSERT_NE(p.server, nullptr);

  UdpChannel raw;
  ASSERT_TRUE(raw.open(0));
  const std::uint16_t port = p.server->local_port();

  // Wrong destination socket id on a well-formed ACK.
  std::array<std::uint32_t, AckPayload::kWords> ack_words{};
  send_raw_ctrl(raw, port, CtrlType::kAck, p.server->id() + 1, ack_words);
  // Unknown control type with the right id.
  std::vector<std::uint8_t> pkt(kHeaderBytes);
  store_be32(pkt.data(), 0x80000000U | (9U << 16));  // type 9: not a thing
  store_be32(pkt.data() + 12, p.server->id());
  raw.send_to(Endpoint{0x7F000001u, port}, pkt);
  // Truncated ACK (right id, half a payload).
  std::array<std::uint32_t, 2> short_words{};
  send_raw_ctrl(raw, port, CtrlType::kAck, p.server->id(), short_words);

  std::this_thread::sleep_for(std::chrono::milliseconds{200});
  // Wrong-destination datagrams die at the multiplexer's routing table
  // (unroutable), before any socket sees them; the unknown type and the
  // truncated ACK pass routing and die in the socket's validation layer.
  EXPECT_GE(p.server->perf().invalid_packets, 2u);
  ASSERT_NE(p.server->multiplexer(), nullptr);
  EXPECT_GE(p.server->multiplexer()->unroutable_datagrams(), 1u);
  EXPECT_EQ(p.server->state(), ConnState::kEstablished);
  p.client->close();
  p.server->close();
}

TEST(SocketFault, RandomDatagramBlastDoesNotKillTheConnection) {
  Pair p = make_pair_opts({}, {});
  ASSERT_NE(p.server, nullptr);

  UdpChannel raw;
  ASSERT_TRUE(raw.open(0));
  const Endpoint to{0x7F000001u, p.server->local_port()};
  std::mt19937_64 rng{123};
  std::vector<std::uint8_t> junk;
  for (int i = 0; i < 2000; ++i) {
    junk.resize(rng() % 200);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    raw.send_to(to, junk);
  }

  // The connection shrugs it off and still moves data, exactly.
  const auto payload = make_payload(256 << 10, 12);
  EXPECT_EQ(pump(*p.client, *p.server, payload), payload);
  EXPECT_EQ(p.server->state(), ConnState::kEstablished);
  p.client->close();
  p.server->close();
}

// --- handshake under faults -------------------------------------------------

TEST(SocketFault, ConnectSurvivesListenerSideResponseLoss) {
  // Listener-side injection: half of everything the listener (and its
  // children) send is dropped, and client->listener requests are lossy too.
  // The handshake retry loop must still converge, and the accept loop must
  // keep serving rather than aborting on the noise.
  FaultConfig cfg;
  cfg.send.drop_p = 0.5;  // listener responses
  cfg.recv.drop_p = 0.3;  // client requests as seen by the listener
  cfg.seed = 424242;
  SocketOptions server_opts;
  server_opts.faults = std::make_shared<FaultInjector>(cfg);

  auto listener = Socket::listen(0, server_opts);
  ASSERT_NE(listener, nullptr);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{10});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(), {});
  auto server = accepted.get();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  // The connection works (the children inherit the lossy channel, so this
  // also exercises data transfer under listener-side faults).
  const auto payload = make_payload(64 << 10, 15);
  EXPECT_EQ(pump(*client, *server, payload), payload);
  // The server side genuinely lost datagrams on the way to that byte-exact
  // transfer — the injector was live, not bypassed.
  EXPECT_GT(server_opts.faults->stats(FaultDir::kSend).dropped +
                server_opts.faults->stats(FaultDir::kRecv).dropped,
            0u);
  client->close();
  server->close();
}

TEST(SocketFault, ConnectRejectsHostileMssAndAcceptsValidResponse) {
  // A fake "listener" answers the first request with mss = 0, the second
  // with mss far above the proposal, and only then with an honest response.
  // The client must reject both hostile responses and connect on the third.
  UdpChannel fake;
  ASSERT_TRUE(fake.open(0));
  fake.set_recv_timeout(std::chrono::seconds{5});

  SocketOptions client_opts;
  client_opts.mss_bytes = 1456;
  auto server_thread = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> buf(2048);
    const std::array<std::uint32_t, 3> hostile_then_valid{
        0u, 1u << 20, static_cast<std::uint32_t>(client_opts.mss_bytes)};
    std::uint32_t answered = 0;
    Endpoint src;
    while (answered < hostile_then_valid.size()) {
      const RecvResult r = fake.recv_from(src, buf);
      if (r.status != RecvStatus::kDatagram || r.bytes < kHeaderBytes) {
        continue;
      }
      std::span<const std::uint8_t> pkt{buf.data(), r.bytes};
      const auto hdr = decode_ctrl_header(pkt);
      if (!hdr || hdr->type != CtrlType::kHandshake) continue;
      const auto req = decode_handshake_payload(pkt.subspan(kHeaderBytes));
      if (!req || req->request_type != 1) continue;

      HandshakePayload resp = *req;
      resp.request_type = 0;
      resp.mss_bytes = hostile_then_valid[answered];
      resp.socket_id = 77;
      resp.port = fake.local_port();
      std::vector<std::uint8_t> out(kHeaderBytes +
                                    4 * HandshakePayload::kWords);
      CtrlHeader out_hdr;
      out_hdr.type = CtrlType::kHandshake;
      out_hdr.dst_socket = req->socket_id;
      write_ctrl_header(out, out_hdr);
      encode_handshake_payload(std::span{out}.subspan(kHeaderBytes), resp);
      fake.send_to(src, out);
      ++answered;
    }
    return answered;
  });

  auto client =
      Socket::connect("127.0.0.1", fake.local_port(), client_opts);
  EXPECT_EQ(server_thread.get(), 3u);  // needed all three responses
  ASSERT_NE(client, nullptr);          // hostile MSS rejected, valid accepted
  client->close();
}

TEST(SocketFault, ConnectRefusesWhenOnlyHostileMssResponsesArrive) {
  // Every response is hostile (mss larger than proposed): connect must keep
  // retrying and give up cleanly, never adopt the bogus MSS.
  UdpChannel fake;
  ASSERT_TRUE(fake.open(0));
  fake.set_recv_timeout(std::chrono::milliseconds{200});

  std::atomic<bool> stop{false};
  auto server_thread = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> buf(2048);
    Endpoint src;
    while (!stop) {
      const RecvResult r = fake.recv_from(src, buf);
      if (r.status != RecvStatus::kDatagram || r.bytes < kHeaderBytes) {
        continue;
      }
      std::span<const std::uint8_t> pkt{buf.data(), r.bytes};
      const auto hdr = decode_ctrl_header(pkt);
      if (!hdr || hdr->type != CtrlType::kHandshake) continue;
      const auto req = decode_handshake_payload(pkt.subspan(kHeaderBytes));
      if (!req || req->request_type != 1) continue;
      HandshakePayload resp = *req;
      resp.request_type = 0;
      resp.mss_bytes = 1u << 24;  // absurd
      resp.socket_id = 99;
      resp.port = fake.local_port();
      std::vector<std::uint8_t> out(kHeaderBytes +
                                    4 * HandshakePayload::kWords);
      CtrlHeader out_hdr;
      out_hdr.type = CtrlType::kHandshake;
      out_hdr.dst_socket = req->socket_id;
      write_ctrl_header(out, out_hdr);
      encode_handshake_payload(std::span{out}.subspan(kHeaderBytes), resp);
      fake.send_to(src, out);
    }
  });

  // Shorten the retry budget via a tiny payload?  The retry count is fixed
  // (50 x 100 ms), so bound the test by running connect in a thread and
  // requiring a nullptr within the full budget.
  auto client = Socket::connect("127.0.0.1", fake.local_port(), {});
  EXPECT_EQ(client, nullptr);
  stop = true;
  server_thread.get();
}

// --- graceful shutdown ------------------------------------------------------

TEST(SocketFault, CloseMovesPeerToClosingAndUnblocksRecv) {
  Pair p = make_pair_opts({}, {});
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);

  const auto payload = make_payload(64 << 10, 13);
  EXPECT_EQ(pump(*p.client, *p.server, payload), payload);

  p.client->close();
  EXPECT_EQ(p.client->state(), ConnState::kClosed);

  // The peer observes the shutdown (not a hang, not an error).
  std::vector<std::uint8_t> buf(1024);
  EXPECT_EQ(p.server->recv(buf, std::chrono::seconds{5}), 0u);
  EXPECT_EQ(p.server->state(), ConnState::kClosing);
  EXPECT_EQ(p.server->last_error(), SocketError::kNone);
  p.server->close();
  EXPECT_EQ(p.server->state(), ConnState::kClosed);
}

TEST(SocketFault, LingerDeliversTailOfStreamOnImmediateClose) {
  SocketOptions client;
  client.linger_s = 5.0;
  Pair p = make_pair_opts({}, client);
  ASSERT_NE(p.client, nullptr);

  // send() then close() immediately: linger must let the tail drain.
  const auto payload = make_payload(512 << 10, 14);
  auto recv_done = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> received;
    std::vector<std::uint8_t> buf(1 << 16);
    while (received.size() < payload.size()) {
      const std::size_t n = p.server->recv(buf, std::chrono::seconds{10});
      if (n == 0) break;
      received.insert(received.end(), buf.begin(), buf.begin() + n);
    }
    return received;
  });
  EXPECT_EQ(p.client->send(payload), payload.size());
  p.client->close();  // no explicit flush
  EXPECT_EQ(recv_done.get(), payload);
  p.server->close();
}

}  // namespace
}  // namespace udtr::udt
