// Socket tests for flow control and multi-connection scenarios.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <random>
#include <vector>

#include "udt/socket.hpp"

namespace udtr::udt {
namespace {

std::vector<std::uint8_t> make_payload(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::mt19937_64 rng{seed};
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

TEST(SocketFlow, TwoSequentialClientsOnOneListener) {
  auto listener = Socket::listen(0);
  ASSERT_NE(listener, nullptr);
  const auto port = listener->local_port();

  const auto pay_a = make_payload(256 << 10, 1);
  const auto pay_b = make_payload(256 << 10, 2);

  auto accept_a = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client_a = Socket::connect("127.0.0.1", port);
  auto server_a = accept_a.get();
  ASSERT_NE(client_a, nullptr);
  ASSERT_NE(server_a, nullptr);

  auto accept_b = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client_b = Socket::connect("127.0.0.1", port);
  auto server_b = accept_b.get();
  ASSERT_NE(client_b, nullptr);
  ASSERT_NE(server_b, nullptr);

  // Both connections transfer concurrently and independently.
  auto send_a = std::async(std::launch::async, [&] {
    client_a->send(pay_a);
    client_a->flush(std::chrono::seconds{30});
  });
  auto send_b = std::async(std::launch::async, [&] {
    client_b->send(pay_b);
    client_b->flush(std::chrono::seconds{30});
  });
  const auto drain = [](Socket& s, std::size_t want) {
    std::vector<std::uint8_t> all, buf(1 << 16);
    while (all.size() < want) {
      const std::size_t n = s.recv(buf, std::chrono::seconds{10});
      if (n == 0) break;
      all.insert(all.end(), buf.begin(), buf.begin() + n);
    }
    return all;
  };
  auto got_b = std::async(std::launch::async,
                          [&] { return drain(*server_b, pay_b.size()); });
  const auto got_a = drain(*server_a, pay_a.size());
  send_a.get();
  send_b.get();
  EXPECT_EQ(got_a, pay_a);
  EXPECT_EQ(got_b.get(), pay_b);
  client_a->close();
  client_b->close();
  server_a->close();
  server_b->close();
}

TEST(SocketFlow, SlowReaderThrottledByFlowControlNotBroken) {
  // Tiny receiver buffer + slow reader: the flow-control window in ACKs
  // must keep the sender from overrunning, and everything still arrives.
  SocketOptions opts;
  opts.rcv_buffer_pkts = 64;
  auto listener = Socket::listen(0, opts);
  ASSERT_NE(listener, nullptr);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(), opts);
  auto server = accepted.get();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  const auto payload = make_payload(512 << 10, 3);
  auto send_done = std::async(std::launch::async, [&] {
    return client->send(payload);
  });
  std::vector<std::uint8_t> got;
  std::vector<std::uint8_t> buf(16 << 10);  // small reads
  while (got.size() < payload.size()) {
    const std::size_t n = server->recv(buf, std::chrono::seconds{20});
    if (n == 0) break;
    got.insert(got.end(), buf.begin(), buf.begin() + n);
    std::this_thread::sleep_for(std::chrono::microseconds{200});  // slow app
  }
  EXPECT_EQ(send_done.get(), payload.size());
  EXPECT_EQ(got, payload);
  client->close();
  server->close();
}

TEST(SocketFlow, WindowControlOffStillReliableUnderLoss) {
  // Fig. 7's "without FC" configuration on the real stack: more loss churn,
  // but the NAK machinery still delivers every byte.
  SocketOptions opts;
  opts.window_control = false;
  opts.loss_injection = 0.03;
  opts.loss_seed = 5;
  auto listener = Socket::listen(0, opts);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(), opts);
  auto server = accepted.get();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  const auto payload = make_payload(256 << 10, 6);
  auto send_done = std::async(std::launch::async, [&] {
    const std::size_t n = client->send(payload);
    client->flush(std::chrono::seconds{60});
    return n;
  });
  std::vector<std::uint8_t> got, buf(1 << 16);
  while (got.size() < payload.size()) {
    const std::size_t n = server->recv(buf, std::chrono::seconds{20});
    if (n == 0) break;
    got.insert(got.end(), buf.begin(), buf.begin() + n);
  }
  EXPECT_EQ(send_done.get(), payload.size());
  EXPECT_EQ(got, payload);
  client->close();
  server->close();
}

TEST(SocketFlow, MaxBandwidthCapIsRespected) {
  SocketOptions opts;
  opts.max_bandwidth_mbps = 50.0;
  auto listener = Socket::listen(0, opts);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port(), opts);
  auto server = accepted.get();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  std::atomic<bool> stop{false};
  auto snd = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> block(1 << 20, 0x42);
    while (!stop) client->send(block);
  });
  auto rcv = std::async(std::launch::async, [&] {
    std::vector<std::uint8_t> buf(1 << 20);
    while (!stop) server->recv(buf, std::chrono::milliseconds{100});
  });
  std::this_thread::sleep_for(std::chrono::seconds{2});
  const double mbps =
      static_cast<double>(server->perf().bytes_delivered) * 8.0 / 2.0 / 1e6;
  stop = true;
  client->close();
  server->close();
  snd.get();
  rcv.get();
  // The invariant under test is the cap: delivery must never exceed it
  // (plus headroom for the 2 s sampling window's edges).  The floor is
  // only a liveness check — on an oversubscribed CI box the schedulable
  // rate is unbounded below (observed: ~1 Mb/s under 8x ctest load), so
  // it must not assert that pacing reaches the cap.
  EXPECT_LT(mbps, 60.0);
  EXPECT_GT(mbps, 0.5);
}

}  // namespace
}  // namespace udtr::udt
