// Sender-side overlapped IO (§4.7): data leaves from the caller's memory
// with no protocol-buffer copy, and the call returns only once the memory
// is safe to reuse.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <random>
#include <vector>

#include "udt/socket.hpp"

namespace udtr::udt {
namespace {

std::vector<std::uint8_t> make_payload(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::mt19937_64 rng{seed};
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

struct Pair {
  std::unique_ptr<Socket> listener, client, server;
};

Pair make_pair(SocketOptions opts = {}) {
  Pair p;
  p.listener = Socket::listen(0, opts);
  auto accepted = std::async(std::launch::async, [&] {
    return p.listener->accept(std::chrono::seconds{5});
  });
  p.client = Socket::connect("127.0.0.1", p.listener->local_port(), opts);
  p.server = accepted.get();
  return p;
}

std::vector<std::uint8_t> drain(Socket& s, std::size_t want) {
  std::vector<std::uint8_t> all, buf(1 << 16);
  while (all.size() < want) {
    const std::size_t n = s.recv(buf, std::chrono::seconds{15});
    if (n == 0) break;
    all.insert(all.end(), buf.begin(), buf.begin() + n);
  }
  return all;
}

TEST(SendOverlapped, RoundTripExact) {
  Pair p = make_pair();
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);
  const auto payload = make_payload(1 << 20, 21);
  auto sent = std::async(std::launch::async, [&] {
    return p.client->send_overlapped(payload);
  });
  EXPECT_EQ(drain(*p.server, payload.size()), payload);
  EXPECT_EQ(sent.get(), payload.size());
  p.client->close();
  p.server->close();
}

TEST(SendOverlapped, ReturnImpliesBufferReusable) {
  Pair p = make_pair();
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);
  auto block = make_payload(256 << 10, 22);
  const auto original = block;

  auto receiver = std::async(std::launch::async, [&] {
    return drain(*p.server, block.size());
  });
  const std::size_t n = p.client->send_overlapped(block);
  EXPECT_EQ(n, block.size());
  // The call returned: every borrowed chunk is acknowledged, so scribbling
  // over the buffer must not corrupt what the receiver got.
  std::fill(block.begin(), block.end(), std::uint8_t{0xEE});
  EXPECT_EQ(receiver.get(), original);
  p.client->close();
  p.server->close();
}

TEST(SendOverlapped, SurvivesLossWithRetransmissionsFromBorrowedMemory) {
  SocketOptions opts;
  opts.loss_injection = 0.05;
  opts.loss_seed = 23;
  Pair p = make_pair(opts);
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);
  const auto payload = make_payload(512 << 10, 24);
  auto sent = std::async(std::launch::async, [&] {
    return p.client->send_overlapped(payload);
  });
  EXPECT_EQ(drain(*p.server, payload.size()), payload);
  EXPECT_EQ(sent.get(), payload.size());
  EXPECT_GT(p.client->perf().retransmitted, 0u);
  p.client->close();
  p.server->close();
}

TEST(SendOverlapped, InterleavesWithCopyingSendInOrder) {
  Pair p = make_pair();
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);
  const auto a = make_payload(64 << 10, 25);
  const auto b = make_payload(64 << 10, 26);
  const auto c = make_payload(64 << 10, 27);
  auto receiver = std::async(std::launch::async, [&] {
    return drain(*p.server, a.size() + b.size() + c.size());
  });
  p.client->send(a);
  p.client->send_overlapped(b);
  p.client->send(c);
  const auto got = receiver.get();
  ASSERT_EQ(got.size(), a.size() + b.size() + c.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), got.begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), got.begin() + a.size()));
  EXPECT_TRUE(std::equal(c.begin(), c.end(),
                         got.begin() + a.size() + b.size()));
  p.client->close();
  p.server->close();
}

TEST(SndBufferBorrowed, NoCopyAndCorrectChunks) {
  SndBuffer sb{100, 10000};
  const auto data = make_payload(250, 28);
  EXPECT_EQ(sb.add_borrowed(data), 250u);
  EXPECT_EQ(sb.chunk_count(), 3u);
  // The chunk views alias the caller's memory (zero copy).
  EXPECT_EQ(sb.chunk(0)->data(), data.data());
  EXPECT_EQ(sb.chunk(2)->data(), data.data() + 200);
  EXPECT_EQ(sb.chunk(2)->size(), 50u);
  sb.ack_up_to(3);
  EXPECT_EQ(sb.bytes(), 0u);
}

}  // namespace
}  // namespace udtr::udt
