// End-to-end tests of the real UDT socket library over loopback UDP:
// handshake, reliable stream transfer (with and without injected loss),
// file transfer, wraparound sequence numbers, and perfmon sanity.
#include "udt/socket.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <future>
#include <numeric>
#include <random>

namespace udtr::udt {
namespace {

std::vector<std::uint8_t> make_payload(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::mt19937_64 rng{seed};
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

// Runs a one-direction transfer and returns the received bytes.
std::vector<std::uint8_t> transfer(const std::vector<std::uint8_t>& payload,
                                   SocketOptions server_opts,
                                   SocketOptions client_opts) {
  auto listener = Socket::listen(0, server_opts);
  EXPECT_NE(listener, nullptr);
  const std::uint16_t port = listener->local_port();

  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{10});
  });
  auto client = Socket::connect("127.0.0.1", port, client_opts);
  EXPECT_NE(client, nullptr);
  auto server = accepted.get();
  EXPECT_NE(server, nullptr);
  if (!client || !server) return {};

  auto send_done = std::async(std::launch::async, [&] {
    const std::size_t sent = client->send(payload);
    client->flush(std::chrono::seconds{60});
    return sent;
  });

  std::vector<std::uint8_t> received;
  std::vector<std::uint8_t> buf(1 << 16);
  while (received.size() < payload.size()) {
    const std::size_t n = server->recv(buf, std::chrono::seconds{15});
    if (n == 0) break;
    received.insert(received.end(), buf.begin(), buf.begin() + n);
  }
  EXPECT_EQ(send_done.get(), payload.size());
  client->close();
  server->close();
  return received;
}

TEST(Socket, HandshakeEstablishesConnection) {
  auto listener = Socket::listen(0);
  ASSERT_NE(listener, nullptr);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port());
  ASSERT_NE(client, nullptr);
  auto server = accepted.get();
  ASSERT_NE(server, nullptr);
  client->close();
  server->close();
}

TEST(Socket, ConnectToNobodyFails) {
  SocketOptions opts;
  auto s = Socket::connect("127.0.0.1", 1, opts);  // nothing listens there
  EXPECT_EQ(s, nullptr);
}

TEST(Socket, SmallMessageRoundTrip) {
  const auto payload = make_payload(100, 1);
  EXPECT_EQ(transfer(payload, {}, {}), payload);
}

TEST(Socket, MultiMegabyteTransferIsExact) {
  const auto payload = make_payload(4 << 20, 2);
  EXPECT_EQ(transfer(payload, {}, {}), payload);
}

TEST(Socket, TransferSurvivesInjectedLoss) {
  const auto payload = make_payload(1 << 20, 3);
  SocketOptions client;
  client.loss_injection = 0.02;  // 2% forward data loss
  client.loss_seed = 99;
  const auto got = transfer(payload, {}, client);
  EXPECT_EQ(got, payload);
}

TEST(Socket, TransferSurvivesHeavyLoss) {
  const auto payload = make_payload(256 << 10, 4);
  SocketOptions client;
  client.loss_injection = 0.15;
  client.loss_seed = 7;
  const auto got = transfer(payload, {}, client);
  EXPECT_EQ(got, payload);
}

TEST(Socket, SequenceWraparoundMidTransfer) {
  // Start the ISN just below 2^31 so the stream wraps within the first
  // few hundred packets.
  const auto payload = make_payload(1 << 20, 5);
  SocketOptions client;
  client.initial_seq = udtr::SeqNo::kMax - 100;
  const auto got = transfer(payload, {}, client);
  EXPECT_EQ(got, payload);
}

TEST(Socket, WraparoundWithLoss) {
  const auto payload = make_payload(512 << 10, 6);
  SocketOptions client;
  client.initial_seq = udtr::SeqNo::kMax - 50;
  client.loss_injection = 0.05;
  client.loss_seed = 3;
  const auto got = transfer(payload, {}, client);
  EXPECT_EQ(got, payload);
}

TEST(Socket, MssNegotiationPicksMinimum) {
  SocketOptions server;
  server.mss_bytes = 900;
  SocketOptions client;
  client.mss_bytes = 1456;
  const auto payload = make_payload(100 << 10, 7);
  EXPECT_EQ(transfer(payload, server, client), payload);
}

TEST(Socket, PerfStatsAreCoherent) {
  auto listener = Socket::listen(0);
  ASSERT_NE(listener, nullptr);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port());
  ASSERT_NE(client, nullptr);
  auto server = accepted.get();
  ASSERT_NE(server, nullptr);

  const auto payload = make_payload(2 << 20, 8);
  auto send_done = std::async(std::launch::async, [&] {
    client->send(payload);
    client->flush(std::chrono::seconds{30});
  });
  std::vector<std::uint8_t> buf(1 << 16);
  std::size_t got = 0;
  while (got < payload.size()) {
    const std::size_t n = server->recv(buf, std::chrono::seconds{10});
    if (n == 0) break;
    got += n;
  }
  send_done.get();

  const PerfStats cs = client->perf();
  const PerfStats ss = server->perf();
  EXPECT_EQ(cs.bytes_sent, payload.size());
  EXPECT_EQ(ss.bytes_delivered, payload.size());
  EXPECT_GT(cs.data_packets_sent, payload.size() / 1456);
  EXPECT_GT(cs.acks_recv, 0u);
  EXPECT_EQ(cs.acks_recv, cs.acks_recv);
  EXPECT_GT(ss.acks_sent, 0u);
  EXPECT_GE(ss.data_packets_recv, cs.data_packets_sent - cs.retransmitted
            ? 1u : 0u);
  EXPECT_GT(ss.rtt_ms, 0.0);
  EXPECT_LT(ss.rtt_ms, 200.0);
  client->close();
  server->close();
}

TEST(Socket, SendfileRecvfileRoundTrip) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "udtr_test";
  fs::create_directories(dir);
  const auto src = (dir / "src.bin").string();
  const auto dst = (dir / "dst.bin").string();
  const auto payload = make_payload(3 << 20, 9);
  {
    std::ofstream f{src, std::ios::binary};
    f.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  }

  auto listener = Socket::listen(0);
  ASSERT_NE(listener, nullptr);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port());
  ASSERT_NE(client, nullptr);
  auto server = accepted.get();
  ASSERT_NE(server, nullptr);

  auto send_done = std::async(std::launch::async, [&] {
    return client->sendfile(src, 0, payload.size());
  });
  const std::uint64_t received = server->recvfile(dst, payload.size());
  EXPECT_EQ(send_done.get(), payload.size());
  EXPECT_EQ(received, payload.size());

  std::ifstream f{dst, std::ios::binary};
  std::vector<std::uint8_t> got(payload.size());
  f.read(reinterpret_cast<char*>(got.data()),
         static_cast<std::streamsize>(got.size()));
  EXPECT_EQ(got, payload);
  client->close();
  server->close();
  fs::remove_all(dir);
}

TEST(Socket, SendfileWithOffset) {
  namespace fs = std::filesystem;
  const auto dir = fs::temp_directory_path() / "udtr_test_off";
  fs::create_directories(dir);
  const auto src = (dir / "src.bin").string();
  const auto dst = (dir / "dst.bin").string();
  const auto payload = make_payload(1 << 20, 10);
  {
    std::ofstream f{src, std::ios::binary};
    f.write(reinterpret_cast<const char*>(payload.data()),
            static_cast<std::streamsize>(payload.size()));
  }
  constexpr std::uint64_t kOffset = 1000;
  const std::uint64_t len = payload.size() - kOffset;

  auto listener = Socket::listen(0);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port());
  auto server = accepted.get();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  auto send_done = std::async(std::launch::async, [&] {
    return client->sendfile(src, kOffset, len);
  });
  EXPECT_EQ(server->recvfile(dst, len), len);
  EXPECT_EQ(send_done.get(), len);

  std::ifstream f{dst, std::ios::binary};
  std::vector<std::uint8_t> got(len);
  f.read(reinterpret_cast<char*>(got.data()),
         static_cast<std::streamsize>(got.size()));
  EXPECT_TRUE(std::equal(got.begin(), got.end(),
                         payload.begin() + kOffset));
  client->close();
  server->close();
  fs::remove_all(dir);
}

TEST(Socket, RecvTimesOutWithNoData) {
  auto listener = Socket::listen(0);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port());
  auto server = accepted.get();
  ASSERT_NE(server, nullptr);
  std::vector<std::uint8_t> buf(1024);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(server->recv(buf, std::chrono::milliseconds{200}), 0u);
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds{150});
  client->close();
  server->close();
}

TEST(Socket, BidirectionalTransfer) {
  auto listener = Socket::listen(0);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port());
  auto server = accepted.get();
  ASSERT_NE(client, nullptr);
  ASSERT_NE(server, nullptr);

  const auto up = make_payload(256 << 10, 11);
  const auto down = make_payload(256 << 10, 12);
  auto up_send = std::async(std::launch::async, [&] {
    client->send(up);
    client->flush(std::chrono::seconds{30});
  });
  auto down_send = std::async(std::launch::async, [&] {
    server->send(down);
    server->flush(std::chrono::seconds{30});
  });
  const auto drain = [](Socket& s, std::size_t want) {
    std::vector<std::uint8_t> all;
    std::vector<std::uint8_t> buf(1 << 16);
    while (all.size() < want) {
      const std::size_t n = s.recv(buf, std::chrono::seconds{10});
      if (n == 0) break;
      all.insert(all.end(), buf.begin(), buf.begin() + n);
    }
    return all;
  };
  auto down_got = std::async(std::launch::async,
                             [&] { return drain(*client, down.size()); });
  const auto up_got = drain(*server, up.size());
  up_send.get();
  down_send.get();
  EXPECT_EQ(up_got, up);
  EXPECT_EQ(down_got.get(), down);
  client->close();
  server->close();
}

TEST(Socket, CloseIsIdempotentAndUnblocksPeers) {
  auto listener = Socket::listen(0);
  auto accepted = std::async(std::launch::async, [&] {
    return listener->accept(std::chrono::seconds{5});
  });
  auto client = Socket::connect("127.0.0.1", listener->local_port());
  auto server = accepted.get();
  ASSERT_NE(server, nullptr);
  client->close();
  client->close();  // second close is a no-op
  // Server recv should observe the shutdown rather than hang.
  std::vector<std::uint8_t> buf(128);
  EXPECT_EQ(server->recv(buf, std::chrono::seconds{5}), 0u);
  server->close();
}

}  // namespace
}  // namespace udtr::udt
