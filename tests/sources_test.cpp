#include "netsim/sources.hpp"

#include <gtest/gtest.h>

#include "netsim/demux.hpp"
#include "netsim/link.hpp"
#include "netsim/stats.hpp"

namespace udtr::sim {
namespace {

TEST(CbrSource, SendsAtConfiguredRate) {
  Simulator sim;
  CountingSink sink;
  CbrSource src{sim, 1, Bandwidth::mbps(12), 1500, 0.0, 10.0};
  src.set_out(&sink);
  sim.run_until(10.0);
  // 12 Mb/s / (1500*8 b) = 1000 pkt/s for 10 s.
  EXPECT_NEAR(static_cast<double>(sink.packets()), 10000.0, 5.0);
  EXPECT_EQ(src.sent(), sink.packets());
}

TEST(CbrSource, RespectsStartAndStop) {
  Simulator sim;
  CountingSink sink;
  CbrSource src{sim, 1, Bandwidth::mbps(12), 1500, 2.0, 4.0};
  src.set_out(&sink);
  sim.run_until(1.9);
  EXPECT_EQ(sink.packets(), 0u);
  sim.run_until(10.0);
  EXPECT_NEAR(static_cast<double>(sink.packets()), 2000.0, 5.0);
}

TEST(BurstSource, AverageRateMatchesDutyCycle) {
  Simulator sim;
  CountingSink sink;
  // 100 Mb/s bursts, on ~0.1 s / off ~0.3 s -> ~25 Mb/s average.
  BurstSource src{sim, 1, Bandwidth::mbps(100), 1500, 0.1, 0.3, 0.0, 60.0, 7};
  src.set_out(&sink);
  sim.run_until(60.0);
  const double mbps = average_mbps(sink.packets(), 1500, 0.0, 60.0);
  EXPECT_NEAR(mbps, 25.0, 6.0);  // exponential on/off: generous tolerance
}

TEST(BurstSource, DeterministicPerSeed) {
  const auto count = [](std::uint64_t seed) {
    Simulator sim;
    CountingSink sink;
    BurstSource src{sim, 1, Bandwidth::mbps(100), 1500, 0.05, 0.2,
                    0.0, 10.0, seed};
    src.set_out(&sink);
    sim.run_until(10.0);
    return sink.packets();
  };
  EXPECT_EQ(count(42), count(42));
  EXPECT_NE(count(42), count(43));
}

TEST(BurstSource, IsActuallyBursty) {
  // Per-100ms bins must show both silent and saturated stretches.
  Simulator sim;
  CountingSink sink;
  BurstSource src{sim, 1, Bandwidth::mbps(100), 1500, 0.1, 0.4, 0.0, 30.0, 5};
  src.set_out(&sink);
  std::vector<std::uint64_t> bins;
  for (int i = 1; i <= 300; ++i) {
    sim.run_until(0.1 * i);
    bins.push_back(sink.packets());
  }
  int silent = 0, busy = 0;
  for (std::size_t i = 1; i < bins.size(); ++i) {
    const auto delta = bins[i] - bins[i - 1];
    if (delta == 0) ++silent;
    if (delta > 500) ++busy;  // near line rate: 833 pkt per 100 ms
  }
  EXPECT_GT(silent, 50);
  EXPECT_GT(busy, 10);
}

TEST(ThroughputSampler, CountsOnlyDeltas) {
  Simulator sim;
  std::uint64_t counter = 0;
  ThroughputSampler sampler{sim, [&] { return counter; }, 1500, 1.0};
  sim.at(0.5, [&] { counter = 1000; });
  sim.at(1.5, [&] { counter = 1000; });  // no progress in second interval
  sim.run_until(2.0);
  ASSERT_EQ(sampler.samples_mbps().size(), 2u);
  EXPECT_NEAR(sampler.samples_mbps()[0], 12.0, 1e-9);
  EXPECT_NEAR(sampler.samples_mbps()[1], 0.0, 1e-9);
}

}  // namespace
}  // namespace udtr::sim
