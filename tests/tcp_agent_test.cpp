#include "netsim/tcp_agent.hpp"

#include <gtest/gtest.h>

#include "netsim/link.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

namespace udtr::sim {
namespace {

TEST(TcpAgent, SaturatesSmallBdpLink) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(50), 100}};
  TcpFlowConfig cfg;
  net.add_tcp_flow(cfg, 0.010);
  sim.run_until(10.0);
  const double mbps =
      average_mbps(net.tcp_receiver(0).stats().delivered, 1500, 0.0, 10.0);
  EXPECT_GT(mbps, 40.0);
  EXPECT_LE(mbps, 50.5);
}

TEST(TcpAgent, FiniteTransferCompletesInOrder) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(50), 100}};
  TcpFlowConfig cfg;
  cfg.total_packets = 2000;
  net.add_tcp_flow(cfg, 0.020);
  udtr::SeqNo expected{0};
  bool in_order = true;
  net.tcp_receiver(0).set_on_deliver([&](udtr::SeqNo s) {
    if (s != expected) in_order = false;
    expected = expected.next();
  });
  sim.run_until(30.0);
  EXPECT_TRUE(in_order);
  EXPECT_TRUE(net.tcp_sender(0).finished());
  EXPECT_EQ(net.tcp_receiver(0).stats().delivered, 2000u);
}

class TcpLossReliability : public ::testing::TestWithParam<double> {};

TEST_P(TcpLossReliability, LossyPathStillDeliversAll) {
  const double loss_rate = GetParam();
  Simulator sim;
  TcpFlowConfig cfg;
  cfg.flow_id = 3;
  cfg.total_packets = 1500;
  TcpSender snd{sim, cfg};
  TcpReceiver rcv{sim, cfg};
  DelayLink fwd_delay{sim, 0.005};
  LossyLink lossy{loss_rate, 99};
  Link bottleneck{sim, Bandwidth::mbps(50), 0.0, 100};
  DelayLink rev_delay{sim, 0.005};

  snd.set_out(&fwd_delay);
  fwd_delay.set_next(&lossy);
  lossy.set_next(&bottleneck);
  bottleneck.set_next(&rcv);
  rcv.set_out(&rev_delay);
  rev_delay.set_next(&snd);
  snd.start();

  sim.run_until(300.0);
  EXPECT_TRUE(snd.finished()) << "loss=" << loss_rate;
  EXPECT_EQ(rcv.stats().delivered, 1500u);
  if (loss_rate >= 0.01) {
    EXPECT_GT(snd.stats().retransmitted, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossSweep, TcpLossReliability,
                         ::testing::Values(0.0, 0.01, 0.05));

TEST(TcpAgent, DropTailOverflowTriggersFastRecoveryNotOnlyTimeouts) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(50), 25}};
  net.add_tcp_flow({}, 0.040);
  sim.run_until(30.0);
  const auto& s = net.tcp_sender(0).stats();
  EXPECT_GT(s.fast_recoveries, 0u);
  EXPECT_GT(s.retransmitted, 0u);
  // SACK recovery should keep timeouts rare on a steady drop-tail cycle.
  EXPECT_LT(s.timeouts, s.fast_recoveries);
}

TEST(TcpAgent, CwndSawtoothStaysBounded) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(50), 50}};
  net.add_tcp_flow({}, 0.020);
  sim.run_until(20.0);
  // BDP = 83 pkts + 50 queue; cwnd must stay in a plausible band.
  EXPECT_LT(net.tcp_sender(0).cwnd(), 400.0);
  EXPECT_GT(net.tcp_sender(0).cwnd(), 2.0);
}

TEST(TcpAgent, SrttTracksPathRtt) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(50), 200}};
  net.add_tcp_flow({}, 0.080);
  sim.run_until(10.0);
  EXPECT_GT(net.tcp_sender(0).srtt_s(), 0.070);
  EXPECT_LT(net.tcp_sender(0).srtt_s(), 0.200);
}

TEST(TcpAgent, RttBiasTwoFlowsUnequalRtts) {
  // Classic TCP RTT unfairness (paper §2.1): the short-RTT flow wins big.
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(100), 100}};
  net.add_tcp_flow({}, 0.010);
  net.add_tcp_flow({}, 0.100);
  sim.run_until(40.0);
  const double fast = static_cast<double>(
      net.tcp_receiver(0).stats().delivered);
  const double slow = static_cast<double>(
      net.tcp_receiver(1).stats().delivered);
  EXPECT_GT(fast / std::max(slow, 1.0), 2.0);
}

TEST(TcpAgent, FinishCallbackFires) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(50), 100}};
  TcpFlowConfig cfg;
  cfg.total_packets = 200;
  const std::size_t idx = net.add_tcp_flow(cfg, 0.010);
  bool fired = false;
  net.tcp_sender(idx).set_on_finish([&] { fired = true; });
  sim.run_until(20.0);
  EXPECT_TRUE(fired);
}

TEST(TcpAgent, ScalableVariantOutpacesRenoOnHighBdp) {
  // Scalable TCP probes much faster on large-BDP paths (paper §5.2).
  const auto run_variant = [](const std::string& ca) {
    Simulator sim;
    Dumbbell net{sim, {Bandwidth::mbps(200), 400}};
    TcpFlowConfig cfg;
    cfg.cong_avoid = ca;
    net.add_tcp_flow(cfg, 0.100);
    sim.run_until(30.0);
    return average_mbps(net.tcp_receiver(0).stats().delivered, 1500, 0.0,
                        30.0);
  };
  const double reno = run_variant("reno-sack");
  const double scal = run_variant("scalable");
  EXPECT_GT(scal, reno);
}

}  // namespace
}  // namespace udtr::sim
