#include "cc/tcp_cavoid2.hpp"

#include <gtest/gtest.h>

#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

namespace udtr::cc {
namespace {

TEST(Bic, BinarySearchApproachesLastMax) {
  BicCongAvoid bic;
  double w = bic.on_loss(1000.0);  // last_max = 1000, w = 875
  EXPECT_DOUBLE_EQ(w, 875.0);
  // Growth step is half the distance to last_max, capped at Smax, applied
  // fractionally per ACK.
  const double step = (bic.on_ack(875.0) - 875.0) * 875.0;
  EXPECT_NEAR(step, 32.0, 1e-9);  // (1000-875)/2 = 62.5 -> capped at Smax
  const double near = (bic.on_ack(995.0) - 995.0) * 995.0;
  EXPECT_NEAR(near, 2.5, 1e-9);   // (1000-995)/2
}

TEST(Bic, MaxProbingAboveLastMax) {
  BicCongAvoid bic;
  (void)bic.on_loss(100.0);
  const double step = (bic.on_ack(120.0) - 120.0) * 120.0;
  EXPECT_GT(step, 1.0);   // ramping up beyond the old max
  EXPECT_LE(step, 32.0);
}

TEST(Vegas, HoldsWindowInsideAlphaBetaBand) {
  VegasCongAvoid vegas{2.0, 4.0};
  // backlog = cwnd * (1 - base/rtt) = 100 * (1 - 0.1/0.103) ~ 2.9 packets.
  const CaContext ctx{0.103, 0.100};
  EXPECT_DOUBLE_EQ(vegas.on_ack_ctx(100.0, ctx), 100.0);
}

TEST(Vegas, GrowsWhenQueueEmpty) {
  VegasCongAvoid vegas;
  const CaContext ctx{0.1001, 0.100};  // backlog ~ 0.1 pkt < alpha
  EXPECT_GT(vegas.on_ack_ctx(100.0, ctx), 100.0);
}

TEST(Vegas, ShrinksWhenQueueTooLong) {
  VegasCongAvoid vegas;
  const CaContext ctx{0.110, 0.100};  // backlog ~ 9 pkts > beta
  EXPECT_LT(vegas.on_ack_ctx(100.0, ctx), 100.0);
}

TEST(Fast, ConvergesTowardAlphaBacklog) {
  FastCongAvoid fast{/*alpha=*/100.0, /*gamma=*/0.5};
  // Fixed point of the FAST map: w = base/rtt * w + alpha
  //   -> w * (1 - base/rtt) = alpha -> backlog = alpha packets.
  // At the fixed point the per-ACK update leaves cwnd unchanged.
  const double base = 0.1, rtt = 0.11;
  const double w_star = 100.0 / (1.0 - base / rtt);
  const CaContext ctx{rtt, base};
  EXPECT_NEAR(fast.on_ack_ctx(w_star, ctx), w_star, 1e-6);
  // Below the fixed point it grows, above it shrinks.
  EXPECT_GT(fast.on_ack_ctx(w_star * 0.8, ctx), w_star * 0.8);
  EXPECT_LT(fast.on_ack_ctx(w_star * 1.2, ctx), w_star * 1.2);
}

TEST(Factory, ResolvesNewNames) {
  EXPECT_EQ(make_cong_avoid("bic")->name(), "bic");
  EXPECT_EQ(make_cong_avoid("vegas")->name(), "vegas");
  EXPECT_EQ(make_cong_avoid("fast")->name(), "fast");
  EXPECT_TRUE(make_cong_avoid("vegas")->wants_context());
  EXPECT_FALSE(make_cong_avoid("bic")->wants_context());
}

// End-to-end sanity: each new variant fills a clean medium-BDP link.
class NewVariantsE2E : public ::testing::TestWithParam<const char*> {};

TEST_P(NewVariantsE2E, FillsCleanLink) {
  udtr::sim::Simulator sim;
  udtr::sim::Dumbbell net{sim, {udtr::Bandwidth::mbps(100), 200}};
  udtr::sim::TcpFlowConfig cfg;
  cfg.cong_avoid = GetParam();
  net.add_tcp_flow(cfg, 0.020);
  sim.run_until(20.0);
  const double mbps = udtr::sim::average_mbps(
      net.tcp_receiver(0).stats().delivered, 1500, 0.0, 20.0);
  EXPECT_GT(mbps, 70.0) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Variants, NewVariantsE2E,
                         ::testing::Values("bic", "vegas", "fast"));

TEST(Vegas, StopsFillingTheQueueAfterSlowStart) {
  // The delay-based controller's signature behaviour: after the (shared)
  // slow-start overshoot, it holds the backlog near alpha..beta instead of
  // cycling the DropTail buffer like Reno — so it accumulates fewer drops.
  const auto drops = [](const char* ca) {
    udtr::sim::Simulator sim;
    udtr::sim::Dumbbell net{sim, {udtr::Bandwidth::mbps(50), 500}};
    udtr::sim::TcpFlowConfig cfg;
    cfg.cong_avoid = ca;
    net.add_tcp_flow(cfg, 0.040);
    sim.run_until(60.0);
    return net.bottleneck().stats().dropped;
  };
  EXPECT_LT(drops("vegas"), drops("reno-sack"));
}

}  // namespace
}  // namespace udtr::cc
