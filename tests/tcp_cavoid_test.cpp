#include "cc/tcp_cavoid.hpp"

#include <gtest/gtest.h>

namespace udtr::cc {
namespace {

TEST(Reno, AddsOneSegmentPerWindowOfAcks) {
  RenoCongAvoid ca;
  double w = 100.0;
  for (int i = 0; i < 100; ++i) w = ca.on_ack(w);
  EXPECT_NEAR(w, 101.0, 0.01);
}

TEST(Reno, HalvesOnLoss) {
  RenoCongAvoid ca;
  EXPECT_DOUBLE_EQ(ca.on_loss(100.0), 50.0);
  EXPECT_DOUBLE_EQ(ca.on_loss(3.0), 2.0);  // floor at 2 segments
}

TEST(Scalable, MimdGrowthAboveThreshold) {
  ScalableCongAvoid ca;
  EXPECT_DOUBLE_EQ(ca.on_ack(1000.0), 1000.01);
  EXPECT_DOUBLE_EQ(ca.on_loss(1000.0), 875.0);
}

TEST(Scalable, FallsBackToRenoBelowThreshold) {
  ScalableCongAvoid ca{16.0};
  EXPECT_NEAR(ca.on_ack(8.0), 8.0 + 1.0 / 8.0, 1e-12);
  EXPECT_DOUBLE_EQ(ca.on_loss(8.0), 4.0);
}

TEST(HighSpeed, LegacyRegionMatchesReno) {
  HighSpeedCongAvoid ca;
  EXPECT_DOUBLE_EQ(HighSpeedCongAvoid::a(38.0), 1.0);
  EXPECT_DOUBLE_EQ(HighSpeedCongAvoid::b(38.0), 0.5);
  EXPECT_NEAR(ca.on_ack(30.0), 30.0 + 1.0 / 30.0, 1e-12);
}

TEST(HighSpeed, RfcEndpointValues) {
  // RFC 3649: at W = 83000, a(w) ~ 72 and b(w) = 0.1.
  EXPECT_NEAR(HighSpeedCongAvoid::b(83000.0), 0.1, 1e-9);
  EXPECT_NEAR(HighSpeedCongAvoid::a(83000.0), 72.0, 4.0);
}

TEST(HighSpeed, GrowthAndDecreaseAreMonotoneInWindow) {
  double prev_a = 0.0;
  double prev_b = 1.0;
  for (double w = 38.0; w <= 83000.0; w *= 1.7) {
    EXPECT_GE(HighSpeedCongAvoid::a(w), prev_a);
    EXPECT_LE(HighSpeedCongAvoid::b(w), prev_b + 1e-12);
    prev_a = HighSpeedCongAvoid::a(w);
    prev_b = HighSpeedCongAvoid::b(w);
  }
}

TEST(HighSpeed, LessAggressiveDecreaseAtLargeWindows) {
  HighSpeedCongAvoid ca;
  // 10000-packet window loses less than half.
  EXPECT_GT(ca.on_loss(10000.0), 5000.0);
  EXPECT_LT(ca.on_loss(10000.0), 10000.0);
}

TEST(Factory, ResolvesAllNames) {
  EXPECT_EQ(make_cong_avoid("reno-sack")->name(), "reno-sack");
  EXPECT_EQ(make_cong_avoid("reno")->name(), "reno-sack");
  EXPECT_EQ(make_cong_avoid("scalable")->name(), "scalable");
  EXPECT_EQ(make_cong_avoid("highspeed")->name(), "highspeed");
  EXPECT_THROW((void)make_cong_avoid("warp-speed"), std::invalid_argument);
}

}  // namespace
}  // namespace udtr::cc
