// Hierarchical timing wheel (timer_wheel.hpp): the multiplexer's O(expired)
// replacement for the every-socket timer walk.  The wheel is driven here
// with fabricated time_points, so the tests cover simulated hours without
// waiting: scheduling semantics (never early, at most one entry per key),
// cancel/re-arm, past and beyond-horizon deadlines, bulk expiry, and
// concurrent schedule-while-drain (the TSan target).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <random>
#include <thread>
#include <vector>

#include "udt/timer_wheel.hpp"

namespace udtr::udt {
namespace {

using namespace std::chrono_literals;
using Clock = TimerWheel::Clock;

std::vector<std::uint64_t> drain_keys(TimerWheel& w, Clock::time_point now) {
  std::vector<std::uint64_t> fired;
  w.drain(now, [&](std::uint64_t k) { fired.push_back(k); });
  return fired;
}

TEST(TimerWheel, FiresAtDeadlineNeverEarly) {
  TimerWheel w{1ms};
  const auto t0 = Clock::now();
  w.schedule(7, t0 + 50ms);
  EXPECT_EQ(w.size(), 1u);

  // One tick short of the deadline: nothing may fire (deadlines round up to
  // the enclosing tick, so "early" includes the deadline's own tick edge).
  EXPECT_TRUE(drain_keys(w, t0 + 48ms).empty());
  const auto fired = drain_keys(w, t0 + 51ms);
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0], 7u);
  EXPECT_EQ(w.size(), 0u);
  // Fired entries are gone — the next drain is empty.
  EXPECT_TRUE(drain_keys(w, t0 + 100ms).empty());
}

TEST(TimerWheel, InsertCancelReinsert) {
  TimerWheel w{1ms};
  const auto t0 = Clock::now();
  w.schedule(1, t0 + 20ms);
  w.cancel(1);
  EXPECT_EQ(w.size(), 0u);
  EXPECT_TRUE(drain_keys(w, t0 + 40ms).empty());

  // Re-scheduling an armed key moves it (one entry per key), in both
  // directions: later...
  w.schedule(2, t0 + 60ms);
  w.schedule(2, t0 + 120ms);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_TRUE(drain_keys(w, t0 + 80ms).empty());
  EXPECT_EQ(drain_keys(w, t0 + 121ms), std::vector<std::uint64_t>{2});
  // ... and earlier.
  w.schedule(3, t0 + 500ms);
  w.schedule(3, t0 + 130ms);
  EXPECT_EQ(drain_keys(w, t0 + 140ms), std::vector<std::uint64_t>{3});
  EXPECT_EQ(w.size(), 0u);

  // Cancel of an unknown key is a no-op.
  w.cancel(99);
  EXPECT_EQ(w.size(), 0u);
}

TEST(TimerWheel, PastDeadlineFiresOnNextDrain) {
  TimerWheel w{1ms};
  const auto t0 = Clock::now();
  drain_keys(w, t0 + 300ms);  // move the cursor forward first
  w.schedule(5, t0 + 100ms);  // already behind the cursor
  w.schedule(6, t0);          // at/behind the wheel's start
  auto fired = drain_keys(w, t0 + 300ms);  // no cursor movement needed
  std::sort(fired.begin(), fired.end());
  EXPECT_EQ(fired, (std::vector<std::uint64_t>{5, 6}));
}

TEST(TimerWheel, BeyondHorizonDeadlineParksAndRelaps) {
  // A 1us tick keeps the beyond-horizon walk (64^4 ticks) to simulated
  // seconds so the re-lap path actually runs.
  TimerWheel w{1us};
  const auto t0 = Clock::now();
  const auto horizon = std::chrono::microseconds{TimerWheel::horizon_ticks()};
  const auto deadline = t0 + horizon + 250ms;
  w.schedule(11, deadline);

  // Far along, but short of the deadline: the entry must have re-parked,
  // not fired.
  EXPECT_TRUE(drain_keys(w, t0 + horizon).empty());
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(drain_keys(w, deadline + 1ms), std::vector<std::uint64_t>{11});
}

TEST(TimerWheel, TenThousandTimersFireCompletelyAndNeverEarly) {
  TimerWheel w{1ms};
  const auto t0 = Clock::now();
  std::mt19937_64 rng{20260807};
  // Deadlines spread across every wheel level: sub-slot, level 1-2, and a
  // cluster on exact frame boundaries (the cascade edge).
  std::map<std::uint64_t, Clock::duration> due;
  for (std::uint64_t k = 0; k < 10000; ++k) {
    Clock::duration d;
    switch (k % 4) {
      case 0: d = std::chrono::milliseconds{rng() % 64}; break;
      case 1: d = std::chrono::milliseconds{rng() % 4096}; break;
      case 2: d = std::chrono::milliseconds{rng() % 200000}; break;
      default: d = std::chrono::milliseconds{(rng() % 48 + 1) * 4096}; break;
    }
    due[k] = d;
    w.schedule(k, t0 + d);
  }
  ASSERT_EQ(w.size(), 10000u);

  // Drain in coarse steps; every fire must land at a step whose time is at
  // or past its deadline, and each key exactly once.
  std::map<std::uint64_t, int> fire_count;
  auto now = t0;
  while (w.size() > 0) {
    now += 1777ms;
    w.drain(now, [&](std::uint64_t k) {
      ++fire_count[k];
      EXPECT_LE(t0 + due[k], now) << "key " << k << " fired early";
    });
    ASSERT_LT(now - t0, 300s) << "wheel failed to drain";
  }
  ASSERT_EQ(fire_count.size(), 10000u);
  for (const auto& [k, c] : fire_count) {
    EXPECT_EQ(c, 1) << "key " << k << " fired " << c << " times";
  }
}

TEST(TimerWheel, RescheduleFromDrainCallback) {
  TimerWheel w{1ms};
  const auto t0 = Clock::now();
  w.schedule(1, t0 + 10ms);
  int fires = 0;
  // The callback runs with the wheel unlocked and the fired key already
  // removed, so re-arming from inside it must take and survive.
  w.drain(t0 + 11ms, [&](std::uint64_t k) {
    ++fires;
    w.schedule(k, t0 + 30ms);
  });
  EXPECT_EQ(fires, 1);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(drain_keys(w, t0 + 31ms), std::vector<std::uint64_t>{1});
}

// TSan target: one thread drains while others schedule and cancel the same
// key space — the multiplexer's exact shape (rx thread drains + re-arms,
// dispatch tightens deadlines, detach cancels).
TEST(TimerWheel, ConcurrentScheduleWhileDraining) {
  TimerWheel w{1ms};
  const auto t0 = Clock::now();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> fired{0};

  std::thread drainer([&] {
    auto now = t0;
    // Runs until the writers stop AND the cursor has crossed every deadline
    // they could have armed (they finish in milliseconds on a loaded or
    // single-core host, long before fabricated time reaches 400ms).
    while (!stop.load(std::memory_order_relaxed) || now < t0 + 450ms) {
      now += 5ms;
      w.drain(now, [&](std::uint64_t k) {
        fired.fetch_add(1, std::memory_order_relaxed);
        if ((k & 1) != 0) w.schedule(k, now + std::chrono::milliseconds{7});
      });
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([&, t] {
      std::mt19937_64 rng{static_cast<std::uint64_t>(t) + 1};
      for (int i = 0; i < 20000; ++i) {
        const std::uint64_t key = rng() % 128;
        const auto dl = t0 + std::chrono::milliseconds{rng() % 400};
        if (rng() % 8 == 0) {
          w.cancel(key);
        } else {
          w.schedule(key, dl);
        }
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  drainer.join();
  // The drainer's fabricated clock races the writers' real one, so it can
  // finish its window before anything was armed; one final drain past every
  // possible deadline (writers' 400ms + the drainer's 7ms re-arms) makes
  // the fire count deterministic.
  w.drain(t0 + 1s, [&](std::uint64_t) {
    fired.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_GT(fired.load(), 0u);
  EXPECT_LE(w.size(), 128u);
}

}  // namespace
}  // namespace udtr::udt
