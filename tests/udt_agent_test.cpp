#include "netsim/udt_agent.hpp"

#include <gtest/gtest.h>

#include "netsim/link.hpp"
#include "netsim/stats.hpp"
#include "netsim/topology.hpp"

namespace udtr::sim {
namespace {

// A single bulk UDT flow on a clean 100 Mb/s, 20 ms RTT dumbbell should
// saturate most of the link (Fig. 11 behaviour at small scale).
TEST(UdtAgent, SaturatesCleanLink) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(100), 200}};
  UdtFlowConfig cfg;
  net.add_udt_flow(cfg, 0.020);
  sim.run_until(10.0);
  const auto& rcv = net.udt_receiver(0).stats();
  const double mbps = average_mbps(rcv.delivered, 1500, 0.0, 10.0);
  EXPECT_GT(mbps, 80.0);
  EXPECT_LE(mbps, 100.5);
}

TEST(UdtAgent, DeliversEverythingInOrderOnFiniteTransfer) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(100), 100}};
  UdtFlowConfig cfg;
  cfg.total_packets = 5000;
  net.add_udt_flow(cfg, 0.010);
  udtr::SeqNo expected{0};
  bool in_order = true;
  net.udt_receiver(0).set_on_deliver([&](udtr::SeqNo s) {
    if (s != expected) in_order = false;
    expected = expected.next();
  });
  sim.run_until(30.0);
  EXPECT_TRUE(in_order);
  EXPECT_EQ(net.udt_receiver(0).stats().delivered, 5000u);
  EXPECT_TRUE(net.udt_sender(0).finished());
  EXPECT_GT(net.udt_sender(0).finish_time(), 0.0);
}

// Reliability under random loss: every packet must still be delivered
// exactly once and in order (NAK + retransmission machinery).
class UdtLossReliability : public ::testing::TestWithParam<double> {};

TEST_P(UdtLossReliability, LossyPathStillDeliversAll) {
  const double loss_rate = GetParam();
  Simulator sim;
  UdtFlowConfig cfg;
  cfg.flow_id = 7;
  cfg.total_packets = 3000;
  UdtSender snd{sim, cfg};
  UdtReceiver rcv{sim, cfg};
  DelayLink fwd_delay{sim, 0.005};
  LossyLink lossy{loss_rate, /*seed=*/1234};
  Link bottleneck{sim, Bandwidth::mbps(50), 0.0, 100};
  DelayLink rev_delay{sim, 0.005};

  snd.set_out(&fwd_delay);
  fwd_delay.set_next(&lossy);
  lossy.set_next(&bottleneck);
  bottleneck.set_next(&rcv);
  rcv.set_out(&rev_delay);
  rev_delay.set_next(&snd);
  snd.start();
  rcv.start();

  udtr::SeqNo expected{0};
  bool in_order = true;
  std::uint64_t delivered_cb = 0;
  rcv.set_on_deliver([&](udtr::SeqNo s) {
    if (s != expected) in_order = false;
    expected = expected.next();
    ++delivered_cb;
  });

  sim.run_until(120.0);
  EXPECT_TRUE(in_order);
  EXPECT_EQ(delivered_cb, 3000u);
  EXPECT_EQ(rcv.stats().delivered, 3000u);
  if (loss_rate > 0.0) {
    EXPECT_GT(snd.stats().retransmitted, 0u);
    EXPECT_GT(rcv.stats().naks_sent, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossSweep, UdtLossReliability,
                         ::testing::Values(0.0, 0.001, 0.01, 0.05, 0.2));

TEST(UdtAgent, PacketPairEstimatesBottleneckCapacity) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(100), 200}};
  net.add_udt_flow({}, 0.020);
  sim.run_until(5.0);
  const double cap_pps = net.udt_receiver(0).capacity_pps();
  const double true_pps = Bandwidth::mbps(100).packets_per_sec(1500);
  EXPECT_NEAR(cap_pps, true_pps, true_pps * 0.15);
}

TEST(UdtAgent, ReceiverMeasuresRttThroughAck2) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(100), 200}};
  net.add_udt_flow({}, 0.050);
  sim.run_until(5.0);
  // Base RTT 50 ms plus queueing; must be in a sane band.
  EXPECT_GT(net.udt_receiver(0).rtt_s(), 0.045);
  EXPECT_LT(net.udt_receiver(0).rtt_s(), 0.150);
}

TEST(UdtAgent, CongestionOnSmallQueueCausesNaksNotCollapse) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(100), 20}};  // shallow buffer
  net.add_udt_flow({}, 0.040);
  sim.run_until(20.0);
  const auto& s = net.udt_sender(0).stats();
  const auto& r = net.udt_receiver(0).stats();
  EXPECT_GT(s.naks_received, 0u);      // loss happened and was reported
  const double mbps = average_mbps(r.delivered, 1500, 0.0, 20.0);
  EXPECT_GT(mbps, 50.0);               // still utilizes the link decently
}

TEST(UdtAgent, SenderStatsConsistent) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(50), 50}};
  UdtFlowConfig cfg;
  cfg.total_packets = 2000;
  net.add_udt_flow(cfg, 0.010);
  sim.run_until(30.0);
  const auto& s = net.udt_sender(0).stats();
  const auto& r = net.udt_receiver(0).stats();
  EXPECT_EQ(s.data_sent, 2000u);
  // Everything received is accounted as delivered or duplicate overhead.
  EXPECT_GE(s.data_sent + s.retransmitted, r.data_received);
  EXPECT_EQ(r.delivered, 2000u);
}

TEST(UdtAgent, TwoFlowsConvergeToFairShares) {
  Simulator sim;
  Dumbbell net{sim, {Bandwidth::mbps(100), 100}};
  net.add_udt_flow({}, 0.020);
  UdtFlowConfig late;
  late.start_time = 5.0;
  net.add_udt_flow(late, 0.020);
  sim.run_until(60.0);
  // Compare throughput over the shared window [30, 60] via deltas.
  const std::uint64_t d0 = net.udt_receiver(0).stats().delivered;
  const std::uint64_t d1 = net.udt_receiver(1).stats().delivered;
  // Crude check over full run: the latecomer must capture a substantial
  // share (intra-protocol fairness, §3.4).
  const double r0 = static_cast<double>(d0);
  const double r1 = static_cast<double>(d1);
  EXPECT_GT(r1 / (r0 + r1), 0.25);
}

}  // namespace
}  // namespace udtr::sim
