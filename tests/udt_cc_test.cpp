#include "cc/udt_cc.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace udtr::cc {
namespace {

// ----------------------------------------------------------- formula (1) ---

// Table 1 of the paper: increase parameter for MSS = 1500 bytes.
struct Table1Row {
  double bandwidth_bps;
  double expected_inc;
};

class IncreaseTable : public ::testing::TestWithParam<Table1Row> {};

TEST_P(IncreaseTable, MatchesPaperTable1) {
  const auto [b, inc] = GetParam();
  EXPECT_NEAR(UdtCc::increase_for_bandwidth(b, 1500), inc, inc * 1e-9)
      << "B = " << b << " bits/s";
}

INSTANTIATE_TEST_SUITE_P(
    Paper, IncreaseTable,
    ::testing::Values(
        // 1 Gb/s < B <= 10 Gb/s  -> 10 packets / SYN
        Table1Row{10e9, 10.0}, Table1Row{5e9, 10.0}, Table1Row{1.0001e9, 10.0},
        // 100 Mb/s < B <= 1 Gb/s -> 1
        Table1Row{1e9, 1.0}, Table1Row{500e6, 1.0},
        // 10 Mb/s < B <= 100 Mb/s -> 0.1
        Table1Row{100e6, 0.1}, Table1Row{50e6, 0.1},
        // 1 Mb/s < B <= 10 Mb/s -> 0.01
        Table1Row{10e6, 0.01},
        // 0.1 Mb/s < B <= 1 Mb/s -> 0.001
        Table1Row{1e6, 0.001},
        // B <= 0.1 Mb/s -> floored at 1/1500 (~0.00067)
        Table1Row{100e3, 1.0 / 1500.0}, Table1Row{1.0, 1.0 / 1500.0}));

TEST(Increase, ScalesWithMss) {
  // Halving MSS doubles the per-packet increment count (formula 1's
  // 1500/MSS correction term).
  EXPECT_NEAR(UdtCc::increase_for_bandwidth(1e9, 750),
              2.0 * UdtCc::increase_for_bandwidth(1e9, 1500), 1e-12);
}

TEST(Increase, MonotoneInBandwidth) {
  double prev = 0.0;
  for (double b = 1e3; b <= 1e11; b *= 3.0) {
    const double inc = UdtCc::increase_for_bandwidth(b, 1500);
    EXPECT_GE(inc, prev) << b;
    prev = inc;
  }
}

// ------------------------------------------------------ formulas (2)/(3) ---

UdtCcConfig post_slow_start_config() {
  UdtCcConfig cfg;
  cfg.max_window = 1e9;
  return cfg;
}

// Drives a controller out of slow start via a NAK with a known recv rate.
UdtCc make_running_cc(double recv_rate_pps, double capacity_pps) {
  UdtCc cc{post_slow_start_config()};
  cc.set_now(0.0);
  AckInfo first;
  first.ack_seq = udtr::SeqNo{100};
  first.rtt_s = 0.1;
  first.recv_rate_pps = recv_rate_pps;
  first.capacity_pps = capacity_pps;
  cc.on_ack(first);
  cc.set_now(0.01);
  cc.on_nak(udtr::SeqNo{50}, udtr::SeqNo{120});
  return cc;
}

TEST(UdtCc, StartsInSlowStart) {
  UdtCc cc;
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(UdtCc, SlowStartGrowsWindowWithAcks) {
  UdtCc cc;
  cc.set_now(0.0);
  AckInfo a;
  a.ack_seq = udtr::SeqNo{50};
  cc.on_ack(a);
  const double w1 = cc.window_packets();
  a.ack_seq = udtr::SeqNo{150};
  cc.set_now(0.01);
  cc.on_ack(a);
  EXPECT_GT(cc.window_packets(), w1);
  EXPECT_NEAR(cc.window_packets() - w1, 100.0, 1e-9);
}

TEST(UdtCc, NakEndsSlowStartAndPrimesPeriodFromRecvRate) {
  UdtCc cc = make_running_cc(/*recv_rate_pps=*/10000.0,
                             /*capacity_pps=*/20000.0);
  EXPECT_FALSE(cc.in_slow_start());
  // Period primed at 1/recv_rate then decreased once by 1.125.
  EXPECT_NEAR(cc.pkt_send_period_s(), (1.0 / 10000.0) * 1.125, 1e-9);
}

TEST(UdtCc, NakInflatesPeriodByOneEighth) {
  UdtCc cc = make_running_cc(10000.0, 20000.0);
  const double p0 = cc.pkt_send_period_s();
  cc.set_now(0.02);
  // New epoch: loss sequence beyond the last decrease snapshot.
  cc.on_nak(udtr::SeqNo{500}, udtr::SeqNo{600});
  EXPECT_NEAR(cc.pkt_send_period_s(), p0 * 1.125, 1e-12);
}

TEST(UdtCc, FreezesForOneSynOnNewEpoch) {
  UdtCc cc = make_running_cc(10000.0, 20000.0);
  cc.set_now(0.02);
  cc.on_nak(udtr::SeqNo{500}, udtr::SeqNo{600});
  EXPECT_TRUE(cc.frozen_until(0.02 + 0.005));
  EXPECT_FALSE(cc.frozen_until(0.02 + 0.011));
}

TEST(UdtCc, RepeatedNaksWithinEpochAreBounded) {
  UdtCcConfig cfg = post_slow_start_config();
  cfg.max_decreases_per_epoch = 3;
  UdtCc cc{cfg};
  cc.set_now(0.0);
  AckInfo a;
  a.ack_seq = udtr::SeqNo{10};
  a.recv_rate_pps = 10000.0;
  cc.on_ack(a);
  cc.set_now(0.01);
  cc.on_nak(udtr::SeqNo{100}, udtr::SeqNo{200});  // epoch opens (1 decrease)
  const double after_open = cc.pkt_send_period_s();
  // Ten more NAKs inside the same epoch: only 2 further decreases apply.
  for (int i = 0; i < 10; ++i) {
    cc.set_now(0.011 + i * 0.001);
    cc.on_nak(udtr::SeqNo{100 + i}, udtr::SeqNo{200});
  }
  EXPECT_NEAR(cc.pkt_send_period_s(), after_open * 1.125 * 1.125, 1e-12);
}

TEST(UdtCc, AckIncreasesRatePerFormula2) {
  UdtCc cc = make_running_cc(10000.0, 20000.0);
  const double p0 = cc.pkt_send_period_s();
  // One SYN later (past the NAK window), an ACK triggers a rate increase.
  cc.set_now(0.03);
  AckInfo a;
  a.ack_seq = udtr::SeqNo{200};
  a.rtt_s = 0.1;
  a.recv_rate_pps = 10000.0;
  a.capacity_pps = 20000.0;
  cc.on_ack(a);
  const double p1 = cc.pkt_send_period_s();
  EXPECT_LT(p1, p0);
  // Verify against formula (2) with B = min(L/9, L - C) (post-decrease,
  // below the pre-decrease rate): capacity ~20000*0.875+... EWMA-smoothed.
  // Just confirm the increase is additive in packets-per-SYN terms and
  // bounded by the inc for B <= L.
  const double syn = 0.01;
  const double inc_applied = syn / p1 - syn / p0;
  const double max_inc = UdtCc::increase_for_bandwidth(
      20000.0 * 1500 * 8, 1500);
  EXPECT_GT(inc_applied, 0.0);
  EXPECT_LE(inc_applied, max_inc + 1e-9);
}

TEST(UdtCc, NoIncreaseWithinSynOfNak) {
  UdtCc cc = make_running_cc(10000.0, 20000.0);
  const double p0 = cc.pkt_send_period_s();
  // ACK lands 2 ms after the NAK (inside the same SYN interval).
  cc.set_now(0.012);
  AckInfo a;
  a.ack_seq = udtr::SeqNo{200};
  a.recv_rate_pps = 10000.0;
  a.capacity_pps = 20000.0;
  cc.on_ack(a);
  EXPECT_DOUBLE_EQ(cc.pkt_send_period_s(), p0);
}

TEST(UdtCc, WindowTracksArrivalSpeedTimesSynPlusRtt) {
  UdtCc cc = make_running_cc(10000.0, 20000.0);
  cc.set_now(0.05);
  AckInfo a;
  a.ack_seq = udtr::SeqNo{300};
  a.rtt_s = 0.1;  // keeps smoothed RTT at 0.1
  a.recv_rate_pps = 10000.0;
  a.capacity_pps = 20000.0;
  cc.on_ack(a);
  // W = AS * (SYN + RTT) + 16 = 10000 * 0.11 + 16 = 1116.
  EXPECT_NEAR(cc.window_packets(), 10000.0 * 0.11 + 16.0, 1.0);
}

TEST(UdtCc, WindowCappedByReceiverBuffer) {
  UdtCc cc = make_running_cc(10000.0, 20000.0);
  cc.set_now(0.05);
  AckInfo a;
  a.ack_seq = udtr::SeqNo{300};
  a.rtt_s = 0.1;
  a.recv_rate_pps = 10000.0;
  a.avail_buffer_pkts = 100.0;
  cc.on_ack(a);
  EXPECT_DOUBLE_EQ(cc.window_packets(), 100.0);
}

TEST(UdtCc, WindowControlDisabledMeansUnboundedWindow) {
  UdtCcConfig cfg = post_slow_start_config();
  cfg.window_control = false;
  cfg.max_window = 5e8;
  UdtCc cc{cfg};
  cc.set_now(0.0);
  AckInfo a;
  a.ack_seq = udtr::SeqNo{10};
  a.recv_rate_pps = 10000.0;
  cc.on_ack(a);
  cc.set_now(0.01);
  cc.on_nak(udtr::SeqNo{5}, udtr::SeqNo{20});
  cc.set_now(0.03);
  a.ack_seq = udtr::SeqNo{40};
  a.avail_buffer_pkts = 100.0;  // ignored without window control
  cc.on_ack(a);
  EXPECT_DOUBLE_EQ(cc.window_packets(), 5e8);
}

TEST(UdtCc, RecoveryTimeRoughly7Point5Seconds) {
  // Paper §3.3: reaching 90% of a 1 Gb/s link from a cold rate takes about
  // 750 SYN intervals = 7.5 s (inc = 1 packet/SYN while B is in the
  // (100 Mb/s, 1 Gb/s] decade, and 90% is exactly where B crosses out of
  // that decade).
  const double capacity_bps = 1e9;  // 1 Gb/s
  const double cap_pps = capacity_bps / (1500 * 8);
  UdtCc cc = make_running_cc(cap_pps / 100.0, cap_pps);
  double t = 0.02;
  int syn_count = 0;
  const double target_pps = 0.9 * cap_pps;
  while (1.0 / cc.pkt_send_period_s() < target_pps && syn_count < 5000) {
    t += 0.01;
    ++syn_count;
    cc.set_now(t);
    AckInfo a;
    a.ack_seq = udtr::SeqNo{1000 + syn_count};
    a.rtt_s = 0.1;
    a.recv_rate_pps = cap_pps;
    a.capacity_pps = cap_pps;
    cc.on_ack(a);
  }
  // ~750 SYN intervals in theory; allow slack for the EWMA warm-up and the
  // B = min(L/9, L - C) phase right after the decrease.
  EXPECT_GT(syn_count, 500);
  EXPECT_LT(syn_count, 1200);
}

TEST(UdtCc, TimeoutExitsSlowStart) {
  UdtCc cc;
  cc.set_now(0.0);
  AckInfo a;
  a.ack_seq = udtr::SeqNo{10};
  a.recv_rate_pps = 1000.0;
  cc.on_ack(a);
  ASSERT_TRUE(cc.in_slow_start());
  cc.on_timeout();
  EXPECT_FALSE(cc.in_slow_start());
  EXPECT_NEAR(cc.pkt_send_period_s(), 1.0 / 1000.0, 1e-9);
}

}  // namespace
}  // namespace udtr::cc
