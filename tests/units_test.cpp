#include "common/units.hpp"

#include <gtest/gtest.h>

namespace udtr {
namespace {

TEST(Bandwidth, FactoriesAgree) {
  EXPECT_DOUBLE_EQ(Bandwidth::bps(1e9).bits_per_sec(),
                   Bandwidth::gbps(1).bits_per_sec());
  EXPECT_DOUBLE_EQ(Bandwidth::kbps(1000).bits_per_sec(),
                   Bandwidth::mbps(1).bits_per_sec());
}

TEST(Bandwidth, PacketsPerSecond) {
  // 1 Gb/s, 1500 B packets -> 83333.3 pkt/s.
  EXPECT_NEAR(Bandwidth::gbps(1).packets_per_sec(1500), 83333.33, 0.01);
}

TEST(Bandwidth, SerializationTime) {
  // 1500 B at 1 Gb/s = 12 us; at 100 Mb/s = 120 us.
  EXPECT_NEAR(Bandwidth::gbps(1).serialization_time(1500), 12e-6, 1e-12);
  EXPECT_NEAR(Bandwidth::mbps(100).serialization_time(1500), 120e-6, 1e-12);
}

TEST(Bandwidth, SerializationInvertsPacketRate) {
  const Bandwidth bw = Bandwidth::mbps(622);
  EXPECT_NEAR(bw.serialization_time(1500) * bw.packets_per_sec(1500), 1.0,
              1e-12);
}

TEST(Bandwidth, ScalingOperators) {
  EXPECT_DOUBLE_EQ((Bandwidth::mbps(100) * 2.0).mbits_per_sec(), 200.0);
  EXPECT_DOUBLE_EQ((Bandwidth::mbps(100) / 4.0).mbits_per_sec(), 25.0);
}

TEST(Bandwidth, Comparisons) {
  EXPECT_LT(Bandwidth::mbps(100), Bandwidth::gbps(1));
  EXPECT_EQ(Bandwidth::mbps(1000), Bandwidth::gbps(1));
}

TEST(TimeHelpers, MsUs) {
  EXPECT_DOUBLE_EQ(ms(100), 0.1);
  EXPECT_DOUBLE_EQ(us(12), 12e-6);
}

TEST(Bdp, PaperExampleValues) {
  // 1 Gb/s x 100 ms at 1500 B = 8333 packets (the paper's long-haul BDP).
  EXPECT_NEAR(bdp_packets(Bandwidth::gbps(1), 0.1, 1500), 8333.3, 0.1);
  // 10 Gb/s link: 5e5 packets/second arrive (paper §1's processing claim).
  EXPECT_NEAR(Bandwidth::gbps(10).packets_per_sec(1500) / 1e5, 8.3, 0.1);
}

}  // namespace
}  // namespace udtr
