#include "netsim/xcp.hpp"

#include <gtest/gtest.h>

#include "netsim/demux.hpp"
#include "netsim/stats.hpp"

namespace udtr::sim {
namespace {

// One XCP flow through one router+link with a reverse delay path.
struct XcpNet {
  Simulator sim;
  Link link;
  XcpRouter router;
  FlowDemux demux;
  std::vector<std::unique_ptr<XcpSender>> snd;
  std::vector<std::unique_ptr<XcpReceiver>> rcv;
  std::vector<std::unique_ptr<DelayLink>> delays;

  XcpNet(Bandwidth cap, std::size_t queue)
      : link(sim, cap, 0.0, queue), router(sim, link) {
    link.set_next(&demux);
  }

  std::size_t add_flow(double rtt_s, double start = 0.0) {
    XcpFlowConfig cfg;
    cfg.flow_id = static_cast<int>(snd.size()) + 1;
    cfg.start_time = start;
    auto s = std::make_unique<XcpSender>(sim, cfg);
    auto r = std::make_unique<XcpReceiver>(sim);
    auto fwd = std::make_unique<DelayLink>(sim, rtt_s / 2);
    auto rev = std::make_unique<DelayLink>(sim, rtt_s / 2);
    s->set_out(fwd.get());
    fwd->set_next(&router);
    demux.route(cfg.flow_id, r.get());
    r->set_out(rev.get());
    rev->set_next(s.get());
    s->start();
    snd.push_back(std::move(s));
    rcv.push_back(std::move(r));
    delays.push_back(std::move(fwd));
    delays.push_back(std::move(rev));
    return snd.size() - 1;
  }
};

TEST(Xcp, SingleFlowConvergesToLinkCapacity) {
  XcpNet net{Bandwidth::mbps(100), 200};
  net.add_flow(0.040);
  net.sim.run_until(10.0);
  const double mbps =
      average_mbps(net.rcv[0]->stats().delivered, 1500, 0.0, 10.0);
  EXPECT_GT(mbps, 75.0);
  EXPECT_LE(mbps, 100.5);
}

TEST(Xcp, KeepsQueueNearEmpty) {
  // XCP's efficiency controller drains the standing queue (the router
  // "knows everything about the link", §3.4) — unlike loss-probing TCP,
  // which must fill the buffer to find the capacity.
  XcpNet net{Bandwidth::mbps(100), 500};
  net.add_flow(0.040);
  net.sim.run_until(10.0);
  EXPECT_LT(net.link.stats().max_queue_depth, 250u);
  EXPECT_EQ(net.link.stats().dropped, 0u);
}

TEST(Xcp, TwoFlowsConvergeToFairShares) {
  XcpNet net{Bandwidth::mbps(100), 200};
  net.add_flow(0.040);
  net.add_flow(0.040, 3.0);  // latecomer
  net.sim.run_until(20.0);
  // Compare over the shared window via cwnd at the end (both at fair rate).
  const double r0 = static_cast<double>(net.rcv[0]->stats().delivered);
  const double r1 = static_cast<double>(net.rcv[1]->stats().delivered);
  EXPECT_GT(r1 / r0, 0.4);  // latecomer caught up fast (XCP's selling point)
  EXPECT_NEAR(net.snd[0]->cwnd(), net.snd[1]->cwnd(),
              0.5 * std::max(net.snd[0]->cwnd(), net.snd[1]->cwnd()));
}

TEST(Xcp, UnequalRttFlowsStillShareEvenly) {
  XcpNet net{Bandwidth::mbps(100), 200};
  net.add_flow(0.010);
  net.add_flow(0.100);
  net.sim.run_until(30.0);
  const double fast = static_cast<double>(net.rcv[0]->stats().delivered);
  const double slow = static_cast<double>(net.rcv[1]->stats().delivered);
  // Throughput-fair (not window-fair): ratio well above TCP's ~0.05.
  EXPECT_GT(slow / fast, 0.5);
}

TEST(Xcp, RouterFeedbackBudgetGoesNegativeUnderOverload) {
  XcpNet net{Bandwidth::mbps(50), 100};
  net.add_flow(0.020);
  net.sim.run_until(0.3);  // while the flow still overshoots
  // After convergence phi hovers near zero; just assert the controller ran
  // and produced a finite budget.
  EXPECT_TRUE(std::isfinite(net.router.last_phi_pkts()));
}

}  // namespace
}  // namespace udtr::sim
