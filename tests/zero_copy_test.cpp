// Zero-copy datapath coverage: SndBuffer chunk pinning across unlocked
// sends, RecvSlab reference-counted slot ownership moving into RcvBuffer,
// the overlapped user buffer under out-of-order arrival, the scatter-gather
// channel send (two-iovec and GSO-run forms), GRO grid parsing, and parity
// between the zero-copy and legacy staging datapaths.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <future>
#include <memory>
#include <random>
#include <span>
#include <vector>

#include "udt/buffers.hpp"
#include "udt/channel.hpp"
#include "udt/packet.hpp"
#include "udt/socket.hpp"

namespace udtr::udt {
namespace {

std::vector<std::uint8_t> make_payload(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint8_t> v(n);
  std::mt19937_64 rng{seed};
  for (auto& b : v) b = static_cast<std::uint8_t>(rng());
  return v;
}

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t fill) {
  return std::vector<std::uint8_t>(n, fill);
}

// --- SndBuffer pinning -----------------------------------------------------

TEST(SndBufferPin, AckDuringPinParksStorageUntilUnpin) {
  SndBuffer sb{100, 10000};
  std::vector<std::uint8_t> data(500);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  ASSERT_EQ(sb.add(data), 500u);

  // Capture the spans a sender syscall would hold as iovecs.
  const auto span0 = *sb.chunk(0);
  const auto span1 = *sb.chunk(1);
  const std::uint64_t tok = sb.pin(0, 3);

  // An ACK lands mid-syscall: the chunks leave the ring, but their storage
  // must survive until unpin() — the kernel may still be reading it.
  sb.ack_up_to(2);
  EXPECT_FALSE(sb.chunk(0).has_value());
  EXPECT_FALSE(sb.chunk(1).has_value());
  EXPECT_TRUE(std::equal(data.begin(), data.begin() + 100, span0.begin()));
  EXPECT_TRUE(std::equal(data.begin() + 100, data.begin() + 200,
                         span1.begin()));

  EXPECT_TRUE(sb.pinned_below(3));
  EXPECT_FALSE(sb.pinned_below(0));
  EXPECT_TRUE(sb.unpin(tok));
  EXPECT_FALSE(sb.pinned_below(3));
  EXPECT_FALSE(sb.unpin(tok));  // idempotent: the token was consumed
}

TEST(SndBufferPin, OverlappingPinsParkUntilLastCoveringPinDrops) {
  // The io_uring datapath keeps one batch pinned until its CQE while the
  // next pacing round pins the following range: storage parked under the
  // first pin must survive until every pin that could reference it is gone.
  SndBuffer sb{100, 10000};
  ASSERT_EQ(sb.add(pattern(400, 0xCD)), 400u);
  const auto span0 = *sb.chunk(0);
  const std::uint64_t t1 = sb.pin(0, 2);   // batch 1 in flight
  const std::uint64_t t2 = sb.pin(2, 4);   // batch 2 pinned before reap
  EXPECT_EQ(sb.active_pins(), 2u);
  sb.ack_up_to(2);  // ACK covers batch 1 while both pins are active
  // Chunk 0's bytes must still be readable: batch 1's iovecs are in flight.
  EXPECT_EQ(span0[0], 0xCD);
  EXPECT_TRUE(sb.pinned_below(2));
  EXPECT_TRUE(sb.unpin(t2));  // out-of-order release of the later pin
  EXPECT_TRUE(sb.pinned_below(2));  // batch 1 still holds chunks 0-1
  EXPECT_TRUE(sb.unpin(t1));
  EXPECT_FALSE(sb.pinned_below(4));
  EXPECT_EQ(sb.active_pins(), 0u);
}

TEST(SndBufferPin, AckOutsidePinRangeNeedsNoParking) {
  SndBuffer sb{100, 10000};
  ASSERT_EQ(sb.add(pattern(300, 0xAB)), 300u);
  const std::uint64_t tok = sb.pin(2, 3);  // the syscall only covers chunk 2
  sb.ack_up_to(2);     // chunks 0-1 are outside the pin: plain recycle
  EXPECT_TRUE(sb.pinned_below(3));
  EXPECT_TRUE(sb.unpin(tok));
  EXPECT_EQ(sb.chunk(2)->size(), 100u);
}

// --- RecvSlab ownership ----------------------------------------------------

TEST(RecvSlab, AcquireExhaustionAndRefCounting) {
  RecvSlab slab{256, 2};
  EXPECT_EQ(slab.free_count(), 2u);
  const int a = slab.acquire();
  const int b = slab.acquire();
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  EXPECT_EQ(slab.acquire(), -1);  // exhausted: callers fall back to copying

  slab.add_ref(a);    // a parked payload reference
  slab.release(a);    // the receiver's own reference drops...
  EXPECT_EQ(slab.free_count(), 0u);  // ...but the payload ref holds the slot
  slab.release(a);    // last reference: slot returns
  EXPECT_EQ(slab.free_count(), 1u);
  slab.release(b);
  EXPECT_EQ(slab.free_count(), 2u);
}

TEST(RcvBufferSlots, StoreRefParksSlabSlotUntilRead) {
  RecvSlab slab{256, 4};
  RcvBuffer rb{100, 64};

  const auto a = pattern(100, 0x11);
  const auto b = pattern(100, 0x22);
  const int sb_ = slab.acquire();  // out-of-order packet arrives first
  ASSERT_GE(sb_, 0);
  std::memcpy(slab.data(sb_), b.data(), b.size());
  ASSERT_TRUE(rb.store_ref(1, {slab.data(sb_), b.size()}, &slab, sb_));
  slab.release(sb_);  // receiver thread done parsing the slot
  EXPECT_EQ(slab.free_count(), 3u);  // parked payload still owns it

  const int sa = slab.acquire();
  ASSERT_GE(sa, 0);
  std::memcpy(slab.data(sa), a.data(), a.size());
  ASSERT_TRUE(rb.store_ref(0, {slab.data(sa), a.size()}, &slab, sa));
  slab.release(sa);
  EXPECT_EQ(rb.contiguous_end(), 2);

  std::vector<std::uint8_t> out(200);
  EXPECT_EQ(rb.read(out), 200u);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), out.begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), out.begin() + 100));
  // Every slot is back in the free list once the reader consumed them.
  EXPECT_EQ(slab.free_count(), 4u);
}

TEST(RcvBufferSlots, UserBufferWithOutOfOrderSlabArrivals) {
  RecvSlab slab{256, 4};
  RcvBuffer rb{100, 64};
  std::vector<std::uint8_t> user(250);
  EXPECT_EQ(rb.register_user_buffer(user), 0u);

  // Packet 1 overtakes packet 0: it must park (by reference) in the ring
  // even though the user buffer is armed.
  const auto a = pattern(100, 0x31);
  const auto b = pattern(100, 0x32);
  const int sb_ = slab.acquire();
  ASSERT_GE(sb_, 0);
  std::memcpy(slab.data(sb_), b.data(), b.size());
  ASSERT_TRUE(rb.store_ref(1, {slab.data(sb_), b.size()}, &slab, sb_));
  slab.release(sb_);
  EXPECT_EQ(rb.user_buffer_filled(), 0u);

  // The gap fills: packet 0 goes straight to the user buffer, and the
  // parked packet 1 drains right behind it, releasing its slab slot.
  const int sa = slab.acquire();
  ASSERT_GE(sa, 0);
  std::memcpy(slab.data(sa), a.data(), a.size());
  ASSERT_TRUE(rb.store_ref(0, {slab.data(sa), a.size()}, &slab, sa));
  slab.release(sa);

  EXPECT_EQ(rb.user_buffer_filled(), 200u);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), user.begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), user.begin() + 100));
  EXPECT_EQ(slab.free_count(), 4u);
  EXPECT_EQ(rb.release_user_buffer(), 200u);
}

// --- scatter-gather channel send -------------------------------------------

TEST(ZeroCopyChannel, SendGatherScattersHeadAndBody) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  b.set_recv_timeout(std::chrono::milliseconds{500});
  const Endpoint to{0x7F000001u, b.local_port()};

  // Distinct head/body storage per datagram, varying sizes (no GSO run).
  std::vector<std::vector<std::uint8_t>> heads, bodies;
  std::vector<UdpChannel::TxDatagram> dgrams;
  for (std::uint8_t i = 0; i < 6; ++i) {
    heads.push_back(pattern(16, static_cast<std::uint8_t>(0xA0 + i)));
    bodies.push_back(pattern(std::size_t{40} + 13u * i,
                             static_cast<std::uint8_t>(0xB0 + i)));
  }
  for (std::size_t i = 0; i < heads.size(); ++i) {
    dgrams.push_back({heads[i], bodies[i], false});
  }
  EXPECT_EQ(a.send_gather(to, dgrams), dgrams.size());

  for (std::size_t i = 0; i < dgrams.size(); ++i) {
    Endpoint src;
    std::vector<std::uint8_t> buf(2048);
    const auto r = b.recv_from(src, buf);
    ASSERT_EQ(r.status, RecvStatus::kDatagram) << "datagram " << i;
    ASSERT_EQ(r.bytes, 16u + bodies[i].size());
    EXPECT_TRUE(std::equal(heads[i].begin(), heads[i].end(), buf.begin()));
    EXPECT_TRUE(std::equal(bodies[i].begin(), bodies[i].end(),
                           buf.begin() + 16));
  }
}

TEST(ZeroCopyChannel, GsoRunArrivesAsIndividualDatagrams) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  b.set_recv_timeout(std::chrono::milliseconds{500});
  const Endpoint to{0x7F000001u, b.local_port()};

  // An equal-size run: eligible for one UDP_SEGMENT super-datagram.  The
  // receiver is not GRO-enabled, so the kernel must resegment — wire
  // behavior identical to six plain sends.
  std::vector<std::vector<std::uint8_t>> msgs;
  std::vector<UdpChannel::TxDatagram> dgrams;
  for (std::uint8_t i = 0; i < 6; ++i) {
    msgs.push_back(make_payload(100, 100 + i));
    dgrams.push_back({{msgs.back().data(), 16},
                      {msgs.back().data() + 16, 84},
                      false});
  }
  EXPECT_EQ(a.send_gather(to, dgrams), 6u);
  if (UdpChannel::offload_supported() && a.gso_active()) {
    EXPECT_GE(a.gso_super_datagrams(), 1u);
  }

  for (std::size_t i = 0; i < 6; ++i) {
    Endpoint src;
    std::vector<std::uint8_t> buf(2048);
    const auto r = b.recv_from(src, buf);
    ASSERT_EQ(r.status, RecvStatus::kDatagram) << "datagram " << i;
    ASSERT_EQ(r.bytes, 100u);
    EXPECT_TRUE(std::equal(msgs[i].begin(), msgs[i].end(), buf.begin()))
        << "datagram " << i << " corrupted through the GSO path";
  }
}

TEST(ZeroCopyChannel, GroGridParsesBackToLogicalDatagrams) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  b.set_recv_timeout(std::chrono::milliseconds{500});
  const Endpoint to{0x7F000001u, b.local_port()};
  const bool gro = b.enable_gro();  // may be refused off-Linux

  std::vector<std::vector<std::uint8_t>> msgs;
  std::vector<UdpChannel::TxDatagram> dgrams;
  for (std::uint8_t i = 0; i < 8; ++i) {
    msgs.push_back(make_payload(120, 200 + i));
    dgrams.push_back({{msgs.back().data(), 16},
                      {msgs.back().data() + 16, 104},
                      false});
  }
  EXPECT_EQ(a.send_gather(to, dgrams), 8u);

  // Whether the kernel coalesced (gro_size > 0) or not, walking the
  // segment grid must reproduce the logical datagrams byte-exactly.
  std::vector<std::vector<std::uint8_t>> got;
  std::vector<std::uint8_t> arena(4 * 65535);
  std::vector<UdpChannel::RecvSlot> slots(4);
  while (got.size() < 8) {
    for (std::size_t i = 0; i < slots.size(); ++i) {
      slots[i].buf = std::span{arena.data() + i * 65535, 65535};
    }
    const auto r = b.recv_batch(slots);
    ASSERT_EQ(r.status, RecvStatus::kDatagram);
    for (std::size_t i = 0; i < r.count; ++i) {
      for_each_datagram(
          {slots[i].buf.data(), slots[i].bytes}, slots[i].gro_size,
          [&](std::span<const std::uint8_t> pkt) {
            got.emplace_back(pkt.begin(), pkt.end());
          });
    }
  }
  ASSERT_EQ(got.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(got[i], msgs[i]) << "logical datagram " << i;
  }
  (void)gro;
}

TEST(ZeroCopyChannel, InjectorSeesEachGatheredDatagramIndividually) {
  UdpChannel a, b;
  ASSERT_TRUE(a.open(0));
  ASSERT_TRUE(b.open(0));
  b.set_recv_timeout(std::chrono::milliseconds{200});
  const Endpoint to{0x7F000001u, b.local_port()};

  FaultConfig cfg;
  cfg.send.drop_p = 0.5;
  cfg.seed = 7;
  auto faults = std::make_shared<FaultInjector>(cfg);
  a.set_fault_injector(faults);
  // The injector owns per-datagram semantics: GRO must refuse while one is
  // installed on the receive side.
  b.set_fault_injector(faults);
  EXPECT_FALSE(b.enable_gro());

  std::vector<std::vector<std::uint8_t>> msgs;
  std::vector<UdpChannel::TxDatagram> dgrams;
  for (int i = 0; i < 200; ++i) {
    msgs.push_back(make_payload(100, 300 + static_cast<std::uint64_t>(i)));
    dgrams.push_back({{msgs.back().data(), 16},
                      {msgs.back().data() + 16, 84},
                      false});
  }
  EXPECT_EQ(a.send_gather(to, dgrams), 200u);
  // ~50% forward loss: the injector mutated the stream per logical
  // datagram, pre-GSO — not per syscall or per super-datagram.
  const auto dropped = faults->stats(FaultDir::kSend).dropped;
  EXPECT_GT(dropped, 50u);
  EXPECT_LT(dropped, 150u);

  std::size_t received = 0;
  Endpoint src;
  std::vector<std::uint8_t> buf(2048);
  while (b.recv_from(src, buf).status == RecvStatus::kDatagram) ++received;
  EXPECT_EQ(received, 200u - dropped);
}

// --- end-to-end: overlapped receive under reordering, and parity -----------

struct Pair {
  std::unique_ptr<Socket> listener, client, server;
};

Pair make_pair_opts(SocketOptions server_opts, SocketOptions client_opts) {
  Pair p;
  p.listener = Socket::listen(0, server_opts);
  EXPECT_NE(p.listener, nullptr);
  auto accepted = std::async(std::launch::async, [&] {
    return p.listener->accept(std::chrono::seconds{10});
  });
  p.client =
      Socket::connect("127.0.0.1", p.listener->local_port(), client_opts);
  p.server = accepted.get();
  EXPECT_NE(p.client, nullptr);
  EXPECT_NE(p.server, nullptr);
  return p;
}

std::vector<std::uint8_t> pump(Socket& from, Socket& to,
                               const std::vector<std::uint8_t>& payload) {
  auto send_done = std::async(std::launch::async, [&] {
    const std::size_t sent = from.send(payload);
    from.flush(std::chrono::seconds{60});
    return sent;
  });
  std::vector<std::uint8_t> received;
  // 64 KB >= 4*mss: every recv arms the overlapped user buffer, so
  // in-order slab payloads land in application memory directly while
  // reordered ones park by reference and drain behind the gap.
  std::vector<std::uint8_t> buf(1 << 16);
  while (received.size() < payload.size()) {
    const std::size_t n = to.recv(buf, std::chrono::seconds{15});
    if (n == 0) break;
    received.insert(received.end(), buf.begin(), buf.begin() + n);
  }
  EXPECT_EQ(send_done.get(), payload.size());
  return received;
}

TEST(ZeroCopySocket, OverlappedRecvByteExactUnderReordering) {
  FaultConfig cfg;
  cfg.send.reorder_p = 0.05;  // data direction: overtaking packets
  cfg.send.reorder_hold = 4;
  cfg.send.drop_p = 0.02;
  cfg.seed = 20260807;
  auto faults = std::make_shared<FaultInjector>(cfg);

  SocketOptions client;
  client.faults = faults;
  client.max_bandwidth_mbps = 80.0;
  Pair p = make_pair_opts({}, client);
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);

  const auto payload = make_payload(2 << 20, 99);
  const auto got = pump(*p.client, *p.server, payload);
  ASSERT_EQ(got.size(), payload.size());
  EXPECT_EQ(got, payload);
  EXPECT_GT(faults->stats(FaultDir::kSend).reordered, 0u);
  p.client->close();
  p.server->close();
}

TEST(ZeroCopySocket, LegacyDatapathParityByteExact) {
  SocketOptions legacy;
  legacy.zero_copy = false;
  Pair p = make_pair_opts(legacy, legacy);
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);
  const auto payload = make_payload(4 << 20, 7);
  EXPECT_EQ(pump(*p.client, *p.server, payload), payload);
  p.client->close();
  p.server->close();
}

TEST(ZeroCopySocket, MixedModesInteroperate) {
  SocketOptions zc;           // zero-copy + offload
  SocketOptions legacy;
  legacy.zero_copy = false;   // staging datapath
  Pair p = make_pair_opts(/*server=*/zc, /*client=*/legacy);
  ASSERT_NE(p.client, nullptr);
  ASSERT_NE(p.server, nullptr);
  const auto payload = make_payload(2 << 20, 8);
  EXPECT_EQ(pump(*p.client, *p.server, payload), payload);
  p.client->close();
  p.server->close();
}

}  // namespace
}  // namespace udtr::udt
